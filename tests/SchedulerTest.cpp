//===- tests/SchedulerTest.cpp - scheduler integration tests --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness property of every scheduler: for any problem
/// and any worker count, the parallel result equals the sequential
/// result. Runs the full matrix of (problem, scheduler kind, thread
/// count), plus targeted tests of AdaptiveTC's behavioural claims (fewer
/// tasks than Cilk, special tasks appear under steal pressure, ...).
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "problems/FibComp.h"
#include "problems/KnightsTour.h"
#include "problems/NQueens.h"
#include "problems/Pentomino.h"
#include "problems/Strimko.h"
#include "problems/Sudoku.h"

#include <gtest/gtest.h>

using namespace atc;

namespace {

struct MatrixCase {
  SchedulerKind Kind;
  int Threads;
  DequeKind Deque = DequeKind::The;
  StealPolicy Steal = StealPolicy::One;
  VictimPolicy Victim = VictimPolicy::Affinity;
};

std::string caseName(const ::testing::TestParamInfo<MatrixCase> &Info) {
  std::string Name = schedulerKindName(Info.param.Kind);
  for (char &C : Name)
    if (C == '-')
      C = '_';
  if (Info.param.Deque != DequeKind::The)
    Name += std::string("_") + dequeKindName(Info.param.Deque);
  if (Info.param.Steal != StealPolicy::One)
    Name += std::string("_steal") + stealPolicyName(Info.param.Steal);
  if (Info.param.Victim != VictimPolicy::Affinity)
    Name += std::string("_") + victimPolicyName(Info.param.Victim);
  return Name + "_t" + std::to_string(Info.param.Threads);
}

SchedulerConfig makeConfig(const MatrixCase &MC) {
  SchedulerConfig Cfg;
  Cfg.Kind = MC.Kind;
  Cfg.NumWorkers = MC.Threads;
  Cfg.Deque = MC.Deque;
  Cfg.Steal = MC.Steal;
  Cfg.Victim = MC.Victim;
  return Cfg;
}

constexpr DequeKind AtomicDQ = DequeKind::Atomic;
constexpr DequeKind ChaseLevDQ = DequeKind::ChaseLev;
constexpr StealPolicy HalfSP = StealPolicy::Half;
constexpr VictimPolicy RandomVP = VictimPolicy::Random;
constexpr VictimPolicy PartitionedVP = VictimPolicy::Partitioned;

const MatrixCase AllCases[] = {
    {SchedulerKind::Cilk, 1},        {SchedulerKind::Cilk, 2},
    {SchedulerKind::Cilk, 4},        {SchedulerKind::Cilk, 8},
    {SchedulerKind::CilkSynched, 1}, {SchedulerKind::CilkSynched, 4},
    {SchedulerKind::CilkSynched, 8}, {SchedulerKind::Cutoff, 1},
    {SchedulerKind::Cutoff, 4},      {SchedulerKind::Cutoff, 8},
    {SchedulerKind::AdaptiveTC, 1},  {SchedulerKind::AdaptiveTC, 2},
    {SchedulerKind::AdaptiveTC, 4},  {SchedulerKind::AdaptiveTC, 8},
    {SchedulerKind::Tascell, 1},     {SchedulerKind::Tascell, 2},
    {SchedulerKind::Tascell, 4},     {SchedulerKind::Tascell, 8},
    // The same deque-backed engine kinds over the lock-free AtomicDeque:
    // the deque choice must be invisible to the results.
    {SchedulerKind::Cilk, 1, AtomicDQ},
    {SchedulerKind::Cilk, 4, AtomicDQ},
    {SchedulerKind::Cilk, 8, AtomicDQ},
    {SchedulerKind::CilkSynched, 4, AtomicDQ},
    {SchedulerKind::CilkSynched, 8, AtomicDQ},
    {SchedulerKind::Cutoff, 4, AtomicDQ},
    {SchedulerKind::Cutoff, 8, AtomicDQ},
    {SchedulerKind::AdaptiveTC, 1, AtomicDQ},
    {SchedulerKind::AdaptiveTC, 2, AtomicDQ},
    {SchedulerKind::AdaptiveTC, 4, AtomicDQ},
    {SchedulerKind::AdaptiveTC, 8, AtomicDQ},
    // ... and over the growable ChaseLevDeque.
    {SchedulerKind::Cilk, 1, ChaseLevDQ},
    {SchedulerKind::Cilk, 4, ChaseLevDQ},
    {SchedulerKind::Cilk, 8, ChaseLevDQ},
    {SchedulerKind::CilkSynched, 4, ChaseLevDQ},
    {SchedulerKind::CilkSynched, 8, ChaseLevDQ},
    {SchedulerKind::Cutoff, 4, ChaseLevDQ},
    {SchedulerKind::Cutoff, 8, ChaseLevDQ},
    {SchedulerKind::AdaptiveTC, 1, ChaseLevDQ},
    {SchedulerKind::AdaptiveTC, 2, ChaseLevDQ},
    {SchedulerKind::AdaptiveTC, 4, ChaseLevDQ},
    {SchedulerKind::AdaptiveTC, 8, ChaseLevDQ},
    // Steal-half batch acquisition and the non-default victim orderings
    // must likewise be invisible to the results.
    {SchedulerKind::Cilk, 4, ChaseLevDQ, HalfSP},
    {SchedulerKind::Cilk, 8, AtomicDQ, HalfSP},
    {SchedulerKind::AdaptiveTC, 4, ChaseLevDQ, HalfSP},
    {SchedulerKind::AdaptiveTC, 8, DequeKind::The, HalfSP},
    {SchedulerKind::Cilk, 4, ChaseLevDQ, HalfSP, RandomVP},
    {SchedulerKind::AdaptiveTC, 4, ChaseLevDQ, StealPolicy::One, RandomVP},
    {SchedulerKind::AdaptiveTC, 8, ChaseLevDQ, HalfSP, PartitionedVP},
    {SchedulerKind::Tascell, 4, DequeKind::The, StealPolicy::One, RandomVP},
    {SchedulerKind::Tascell, 8, DequeKind::The, StealPolicy::One,
     PartitionedVP},
};

class SchedulerMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(SchedulerMatrix, NQueensArray) {
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(9);
  long long Expected = runSequential(Prob, Root);
  auto R = runProblem(Prob, NQueensArray::makeRoot(9), makeConfig(GetParam()));
  EXPECT_EQ(R.Value, Expected);
}

TEST_P(SchedulerMatrix, NQueensCompute) {
  NQueensCompute Prob;
  auto Root = NQueensCompute::makeRoot(9);
  long long Expected = runSequential(Prob, Root);
  auto R =
      runProblem(Prob, NQueensCompute::makeRoot(9), makeConfig(GetParam()));
  EXPECT_EQ(R.Value, Expected);
}

TEST_P(SchedulerMatrix, Fib) {
  FibProblem Prob;
  auto R = runProblem(Prob, FibProblem::makeRoot(22), makeConfig(GetParam()));
  EXPECT_EQ(R.Value, FibProblem::fibValue(22));
}

TEST_P(SchedulerMatrix, Comp) {
  CompProblem Prob(600, /*ValueRange=*/32);
  auto R = runProblem(Prob, Prob.makeRoot(), makeConfig(GetParam()));
  EXPECT_EQ(R.Value, Prob.referenceCount());
}

TEST_P(SchedulerMatrix, KnightsTour5x5) {
  KnightsTour Prob;
  auto R = runProblem(Prob, KnightsTour::makeRoot(5, 0, 0),
                      makeConfig(GetParam()));
  EXPECT_EQ(R.Value, 304);
}

TEST_P(SchedulerMatrix, Strimko5) {
  Strimko Prob;
  auto Root = Strimko::makeRoot(5);
  long long Expected = runSequential(Prob, Root);
  auto R = runProblem(Prob, Strimko::makeRoot(5), makeConfig(GetParam()));
  EXPECT_EQ(R.Value, Expected);
}

TEST_P(SchedulerMatrix, SudokuBalance) {
  Sudoku Prob;
  auto Root = Sudoku::makeInstance("balance");
  long long Expected = runSequential(Prob, Root);
  auto R = runProblem(Prob, Sudoku::makeInstance("balance"),
                      makeConfig(GetParam()));
  EXPECT_EQ(R.Value, Expected);
}

TEST_P(SchedulerMatrix, PentominoSmall) {
  Pentomino Prob(5, 5, 5);
  auto Root = Prob.makeRoot();
  long long Expected = runSequential(Prob, Root);
  auto R = runProblem(Prob, Prob.makeRoot(), makeConfig(GetParam()));
  EXPECT_EQ(R.Value, Expected);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SchedulerMatrix,
                         ::testing::ValuesIn(AllCases), caseName);

//===----------------------------------------------------------------------===//
// Repeated-run determinism of results (not of schedules)
//===----------------------------------------------------------------------===//

TEST(SchedulerRepeat, AdaptiveTCManyRunsStaySane) {
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 4;
  for (int I = 0; I < 10; ++I) {
    Cfg.Seed = 1000 + static_cast<std::uint64_t>(I);
    auto R = runProblem(Prob, NQueensArray::makeRoot(8), Cfg);
    ASSERT_EQ(R.Value, 92) << "run " << I;
  }
}

TEST(SchedulerRepeat, CilkManyRunsStaySane) {
  FibProblem Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Cilk;
  Cfg.NumWorkers = 4;
  for (int I = 0; I < 10; ++I) {
    Cfg.Seed = 2000 + static_cast<std::uint64_t>(I);
    auto R = runProblem(Prob, FibProblem::makeRoot(18), Cfg);
    ASSERT_EQ(R.Value, FibProblem::fibValue(18)) << "run " << I;
  }
}

TEST(SchedulerRepeat, TascellManyRunsStaySane) {
  NQueensCompute Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Tascell;
  Cfg.NumWorkers = 4;
  for (int I = 0; I < 10; ++I) {
    Cfg.Seed = 3000 + static_cast<std::uint64_t>(I);
    auto R = runProblem(Prob, NQueensCompute::makeRoot(8), Cfg);
    ASSERT_EQ(R.Value, 92) << "run " << I;
  }
}

//===----------------------------------------------------------------------===//
// Behavioural claims from the paper
//===----------------------------------------------------------------------===//

TEST(SchedulerBehaviour, AdaptiveTCCreatesFarFewerTasksThanCilk) {
  // Figure 1's point: "our adaptive task creation strategy only generates
  // 20 tasks, while Cilk generates 49 tasks."
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.NumWorkers = 4;

  Cfg.Kind = SchedulerKind::Cilk;
  auto Cilk = runProblem(Prob, NQueensArray::makeRoot(9), Cfg);
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  auto Atc = runProblem(Prob, NQueensArray::makeRoot(9), Cfg);

  EXPECT_EQ(Cilk.Value, Atc.Value);
  EXPECT_LT(Atc.Stats.TasksCreated, Cilk.Stats.TasksCreated / 4)
      << "AdaptiveTC should create a small fraction of Cilk's tasks";
  EXPECT_GT(Atc.Stats.FakeTasks, 0u)
      << "the bulk of the tree must run as fake tasks";
}

TEST(SchedulerBehaviour, AdaptiveTCCopiesFarLessThanCilk) {
  Sudoku Prob;
  SchedulerConfig Cfg;
  Cfg.NumWorkers = 4;

  Cfg.Kind = SchedulerKind::Cilk;
  auto Cilk = runProblem(Prob, Sudoku::makeInstance("balance"), Cfg);
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  auto Atc = runProblem(Prob, Sudoku::makeInstance("balance"), Cfg);

  EXPECT_EQ(Cilk.Value, Atc.Value);
  EXPECT_LT(Atc.Stats.CopiedBytes, Cilk.Stats.CopiedBytes / 4)
      << "taskprivate copying must collapse with fewer tasks";
}

TEST(SchedulerBehaviour, SingleWorkerAdaptiveTCNeverSpawnsTasksBeyondRoot) {
  // With N = 1 the cut-off is log2(1) = 0: only the root task exists and
  // everything below runs as fake tasks.
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 1;
  auto R = runProblem(Prob, NQueensArray::makeRoot(8), Cfg);
  EXPECT_EQ(R.Value, 92);
  EXPECT_EQ(R.Stats.TasksCreated, 1u);
  EXPECT_EQ(R.Stats.Steals, 0u);
  EXPECT_EQ(R.Stats.SpecialTasks, 0u);
}

TEST(SchedulerBehaviour, CilkCreatesATaskPerInternalNodeVisit) {
  FibProblem Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Cilk;
  Cfg.NumWorkers = 1;
  auto R = runProblem(Prob, FibProblem::makeRoot(15), Cfg);
  // fib(15) tree: every call is a task in Cilk.
  auto S = FibProblem::makeRoot(15);
  TreeProfile Profile;
  profileTree(Prob, S, Profile);
  EXPECT_EQ(R.Stats.TasksCreated, static_cast<std::uint64_t>(Profile.Nodes));
}

TEST(SchedulerBehaviour, CutoffLimitsTaskDepth) {
  FibProblem Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Cutoff;
  Cfg.NumWorkers = 2;
  Cfg.Cutoff = 3;
  auto R = runProblem(Prob, FibProblem::makeRoot(20), Cfg);
  EXPECT_EQ(R.Value, FibProblem::fibValue(20));
  // At most 2^0 + ... + 2^3 = 15 frames can exist (fib spawns 2 children);
  // allow the root.
  EXPECT_LE(R.Stats.TasksCreated, 15u);
}

TEST(SchedulerBehaviour, TascellReportsPollingAndRequests) {
  // The workload must be long enough that the idle workers' threads get
  // scheduled (and post requests) before worker 0 finishes — on a
  // single-core host that means outlasting an OS timeslice.
  NQueensCompute Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Tascell;
  Cfg.NumWorkers = 4;
  auto R = runProblem(Prob, NQueensCompute::makeRoot(11), Cfg);
  EXPECT_EQ(R.Value, 2680);
  EXPECT_GT(R.Stats.Polls, 0u);
  EXPECT_GT(R.Stats.Requests, 0u);
}

TEST(SchedulerBehaviour, SpecialTasksFireUnderStealPressure) {
  // With max_stolen_num = 0 a single failed steal arms need_task, so the
  // check version must publish special tasks once thieves run dry. The
  // result must be unaffected. (Scheduling on a time-sliced single core
  // is nondeterministic; retry until the path is observed.)
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 4;
  Cfg.MaxStolenNum = 0;
  std::uint64_t Specials = 0;
  for (int Attempt = 0; Attempt < 10 && Specials == 0; ++Attempt) {
    Cfg.Seed = 77 + static_cast<std::uint64_t>(Attempt);
    auto R = runProblem(Prob, NQueensArray::makeRoot(11), Cfg);
    ASSERT_EQ(R.Value, 2680) << "attempt " << Attempt;
    Specials = R.Stats.SpecialTasks;
  }
  EXPECT_GT(Specials, 0u)
      << "check->fast_2 transition never fired under forced pressure";
}

TEST(SchedulerBehaviour, SpecialTasksFireWithAtomicDeque) {
  // The same forced-pressure scenario over the lock-free deque: the CAS
  // Head += 2 jump and the owner-side popSpecial accounting must carry
  // the special-task protocol end to end.
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.Deque = DequeKind::Atomic;
  Cfg.NumWorkers = 4;
  Cfg.MaxStolenNum = 0;
  std::uint64_t Specials = 0;
  for (int Attempt = 0; Attempt < 10 && Specials == 0; ++Attempt) {
    Cfg.Seed = 177 + static_cast<std::uint64_t>(Attempt);
    auto R = runProblem(Prob, NQueensArray::makeRoot(11), Cfg);
    ASSERT_EQ(R.Value, 2680) << "attempt " << Attempt;
    Specials = R.Stats.SpecialTasks;
  }
  EXPECT_GT(Specials, 0u)
      << "special-task path never fired on the atomic deque";
}

TEST(SchedulerBehaviour, SpecialTasksFireWithChaseLevDeque) {
  // Forced pressure over the growable deque: the Head += 2 jump, the
  // owner-side popSpecial accounting AND ring growth (tiny initial
  // capacity) must carry the protocol end to end.
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.Deque = DequeKind::ChaseLev;
  Cfg.DequeCapacity = 2; // grows under the run's own spawns
  Cfg.NumWorkers = 4;
  Cfg.MaxStolenNum = 0;
  std::uint64_t Specials = 0;
  for (int Attempt = 0; Attempt < 10 && Specials == 0; ++Attempt) {
    Cfg.Seed = 277 + static_cast<std::uint64_t>(Attempt);
    auto R = runProblem(Prob, NQueensArray::makeRoot(11), Cfg);
    ASSERT_EQ(R.Value, 2680) << "attempt " << Attempt;
    Specials = R.Stats.SpecialTasks;
  }
  EXPECT_GT(Specials, 0u)
      << "special-task path never fired on the Chase-Lev deque";
}

TEST(SchedulerBehaviour, StealHalfBatchesAndStaysExact) {
  // Steal-half on a task-per-node policy (deep deques): batches must
  // actually form, every stashed frame must later drain as a counted
  // steal (Steals > BatchSteals would fail if stashed work was lost),
  // and the result must be unchanged. Scheduling is nondeterministic on
  // a time-sliced host, so retry seeds until a batch is observed.
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Cilk;
  Cfg.Deque = DequeKind::ChaseLev;
  Cfg.Steal = StealPolicy::Half;
  Cfg.NumWorkers = 4;
  std::uint64_t Batched = 0;
  for (int Attempt = 0; Attempt < 10 && Batched == 0; ++Attempt) {
    Cfg.Seed = 377 + static_cast<std::uint64_t>(Attempt);
    auto R = runProblem(Prob, NQueensArray::makeRoot(10), Cfg);
    ASSERT_EQ(R.Value, 724) << "attempt " << Attempt;
    ASSERT_EQ(R.Stats.StealAttempts, R.Stats.Steals + R.Stats.StealFails)
        << "attempt " << Attempt;
    ASSERT_GE(R.Stats.Steals, R.Stats.BatchSteals)
        << "every batched frame must drain as a stash-hit steal";
    Batched = R.Stats.BatchSteals;
  }
  EXPECT_GT(Batched, 0u) << "steal-half never claimed a batch";
}

//===----------------------------------------------------------------------===//
// Kernel / policy layering invariants
//===----------------------------------------------------------------------===//

// Every tree node runs under exactly one code version, so the kernel's
// accounting must partition the tree for every task-creation policy over
// every deque kind and steal policy: real tasks + fake tasks = tree
// nodes, and every steal attempt resolves to a steal or a fail (stash
// drains count one of each, so steal-half keeps the identity). This is
// the cross-policy uniformity the shared WorkerRuntime guarantees.
TEST(PolicyMatrix, TaskAccountingPartitionsTheTree) {
  const SchedulerKind Kinds[] = {SchedulerKind::Cilk,
                                 SchedulerKind::CilkSynched,
                                 SchedulerKind::Cutoff,
                                 SchedulerKind::AdaptiveTC};
  const DequeKind Deques[] = {DequeKind::The, DequeKind::Atomic,
                              DequeKind::ChaseLev};
  const StealPolicy Steals[] = {StealPolicy::One, StealPolicy::Half};

  NQueensArray NQ;
  auto NQRoot = NQueensArray::makeRoot(9);
  long long NQExpected = runSequential(NQ, NQRoot);
  TreeProfile NQProfile;
  {
    auto S = NQueensArray::makeRoot(9);
    profileTree(NQ, S, NQProfile);
  }

  Sudoku SU;
  auto SURoot = Sudoku::makeInstance("balance");
  long long SUExpected = runSequential(SU, SURoot);
  TreeProfile SUProfile;
  {
    auto S = Sudoku::makeInstance("balance");
    profileTree(SU, S, SUProfile);
  }

  for (SchedulerKind Kind : Kinds)
    for (DequeKind DQ : Deques)
      for (StealPolicy SP : Steals) {
        SchedulerConfig Cfg;
        Cfg.Kind = Kind;
        Cfg.Deque = DQ;
        Cfg.Steal = SP;
        Cfg.NumWorkers = 4;
        const std::string What = std::string(schedulerKindName(Kind)) +
                                 "/" + dequeKindName(DQ) + "/" +
                                 stealPolicyName(SP);

        auto RN = runProblem(NQ, NQueensArray::makeRoot(9), Cfg);
        EXPECT_EQ(RN.Value, NQExpected) << What;
        EXPECT_EQ(RN.Stats.TasksCreated + RN.Stats.FakeTasks,
                  static_cast<std::uint64_t>(NQProfile.Nodes))
            << What << ": node accounting does not partition the tree";
        EXPECT_EQ(RN.Stats.StealAttempts,
                  RN.Stats.Steals + RN.Stats.StealFails)
            << What;
        if (SP == StealPolicy::One) {
          EXPECT_EQ(RN.Stats.BatchSteals, 0u) << What;
        } else {
          EXPECT_GE(RN.Stats.Steals, RN.Stats.BatchSteals) << What;
        }

        // The heavier Sudoku tree only for steal-one: the batch path is
        // already covered above and the matrix is 24 configs deep.
        if (SP != StealPolicy::One)
          continue;
        auto RS = runProblem(SU, Sudoku::makeInstance("balance"), Cfg);
        EXPECT_EQ(RS.Value, SUExpected) << What;
        EXPECT_EQ(RS.Stats.TasksCreated + RS.Stats.FakeTasks,
                  static_cast<std::uint64_t>(SUProfile.Nodes))
            << What << ": node accounting does not partition the tree";
        EXPECT_EQ(RS.Stats.StealAttempts,
                  RS.Stats.Steals + RS.Stats.StealFails)
            << What;
      }
}

// Online tuning moves the cut-off, max_stolen_num and backoff knobs
// mid-run, but it must stay result- and accounting-invisible: every tree
// node still runs under exactly one code version (a dispatch reads one
// cut-off value, whichever it is), so real + fake tasks must still
// partition the tree and every steal attempt must still resolve — across
// scheduler kinds and deque kinds. In an ATC_TUNING=OFF build the flag
// is inert and this leg degenerates to the static matrix, which must
// also pass.
TEST(PolicyMatrix, TuningPreservesNodeAccounting) {
  const SchedulerKind Kinds[] = {SchedulerKind::Cilk,
                                 SchedulerKind::Cutoff,
                                 SchedulerKind::AdaptiveTC};
  const DequeKind Deques[] = {DequeKind::The, DequeKind::Atomic,
                              DequeKind::ChaseLev};

  NQueensArray NQ;
  auto NQRoot = NQueensArray::makeRoot(9);
  long long Expected = runSequential(NQ, NQRoot);
  TreeProfile Profile;
  {
    auto S = NQueensArray::makeRoot(9);
    profileTree(NQ, S, Profile);
  }

  for (SchedulerKind Kind : Kinds)
    for (DequeKind DQ : Deques) {
      SchedulerConfig Cfg;
      Cfg.Kind = Kind;
      Cfg.Deque = DQ;
      Cfg.NumWorkers = 4;
      Cfg.Tuning = true;
      const std::string What = std::string(schedulerKindName(Kind)) + "/" +
                               dequeKindName(DQ) + "/tuned";

      auto R = runProblem(NQ, NQueensArray::makeRoot(9), Cfg);
      EXPECT_EQ(R.Value, Expected) << What;
      EXPECT_EQ(R.Stats.TasksCreated + R.Stats.FakeTasks,
                static_cast<std::uint64_t>(Profile.Nodes))
          << What << ": node accounting does not partition the tree";
      EXPECT_EQ(R.Stats.StealAttempts, R.Stats.Steals + R.Stats.StealFails)
          << What;
    }
}

// Victim ordering is kernel-owned, so every scheduler kind — Tascell's
// mailbox engine included — must accept every VictimPolicy and produce
// the same result. Partitioned runs with a group smaller than the worker
// count so both the in-group and the escalation path execute.
TEST(PolicyMatrix, VictimPoliciesAreResultInvisible) {
  const SchedulerKind Kinds[] = {SchedulerKind::Cilk,
                                 SchedulerKind::AdaptiveTC,
                                 SchedulerKind::Tascell};
  const VictimPolicy Victims[] = {VictimPolicy::Affinity,
                                  VictimPolicy::Random,
                                  VictimPolicy::Partitioned};
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(9);
  long long Expected = runSequential(Prob, Root);
  for (SchedulerKind Kind : Kinds)
    for (VictimPolicy VP : Victims) {
      SchedulerConfig Cfg;
      Cfg.Kind = Kind;
      Cfg.Victim = VP;
      Cfg.VictimGroupSize = 2;
      Cfg.NumWorkers = 4;
      auto R = runProblem(Prob, NQueensArray::makeRoot(9), Cfg);
      EXPECT_EQ(R.Value, Expected) << schedulerKindName(Kind) << "/"
                                   << victimPolicyName(VP);
      if (VP != VictimPolicy::Affinity) {
        EXPECT_EQ(R.Stats.AffinityHits, 0u)
            << "affinity retries must be exclusive to the Affinity policy";
      }
    }
}

// Before the kernel refactor Tascell never reported steal-path counters;
// now the shared steal loop counts attempts for it like for every other
// kind (requests may additionally be abandoned at termination, so
// attempts can exceed steals + fails, never the reverse).
TEST(PolicyMatrix, TascellReportsKernelStealCounters) {
  NQueensCompute Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Tascell;
  Cfg.NumWorkers = 4;
  auto R = runProblem(Prob, NQueensCompute::makeRoot(11), Cfg);
  EXPECT_EQ(R.Value, 2680);
  EXPECT_GT(R.Stats.StealAttempts, 0u);
  EXPECT_GE(R.Stats.StealAttempts, R.Stats.Steals + R.Stats.StealFails);
}

TEST(FrameRecycling, ResetRestoresFreshlyConstructedState) {
  using Frame = TaskFrame<NQueensArray>;

  // Layout guard: frames are recycled through ObjectArena without
  // re-running the constructor, so every field TaskFrame gains must be
  // restored by reset(). This mirror repeats the layout; if the sizes
  // diverge, a field was added or removed — update reset() and the
  // mirror together.
  struct FrameMirror {
    NQueensArray::State *StatePtr;
    NQueensArray::Result PartialAcc, Deposits, SyncAcc;
    int LastChoice, Depth, SpawnDepth;
    std::atomic<int> JoinCount;
    FrameMirror *Parent;
    std::mutex Lock;
    bool Suspended, Special, Detached, OwnsState;
    int AllocWorker;
  };
  static_assert(sizeof(Frame) == sizeof(FrameMirror),
                "TaskFrame layout changed: update reset() and this test");

  Frame F, Parent;
  NQueensArray::State Dummy{};
  F.StatePtr = &Dummy;
  F.PartialAcc = 11;
  F.Deposits = 22;
  F.SyncAcc = 33;
  F.LastChoice = 4;
  F.Depth = 5;
  F.SpawnDepth = 6;
  F.JoinCount.store(7, std::memory_order_relaxed);
  F.Parent = &Parent;
  F.Suspended = true;
  F.Special = true;
  F.Detached = true;
  F.OwnsState = true;
  F.AllocWorker = 9;

  F.reset();

  EXPECT_EQ(F.StatePtr, nullptr);
  EXPECT_EQ(F.PartialAcc, NQueensArray::Result{});
  EXPECT_EQ(F.Deposits, NQueensArray::Result{});
  EXPECT_EQ(F.SyncAcc, NQueensArray::Result{});
  EXPECT_EQ(F.LastChoice, -1);
  EXPECT_EQ(F.Depth, 0);
  EXPECT_EQ(F.SpawnDepth, 0);
  EXPECT_EQ(F.JoinCount.load(std::memory_order_relaxed), 0);
  EXPECT_EQ(F.Parent, nullptr);
  EXPECT_FALSE(F.Suspended);
  EXPECT_FALSE(F.Special);
  EXPECT_FALSE(F.Detached);
  EXPECT_FALSE(F.OwnsState);
  // AllocWorker describes the storage, not the task: it must survive.
  EXPECT_EQ(F.AllocWorker, 9);
}

TEST(SchedulerBehaviour, StatsAggregateAcrossRuns) {
  SchedulerStats A, B;
  A.TasksCreated = 3;
  A.DequeHighWater = 5;
  A.PoolOverflows = 1;
  A.ArenaHighWater = 4;
  B.TasksCreated = 4;
  B.DequeHighWater = 2;
  B.PoolOverflows = 2;
  B.ArenaHighWater = 9;
  A += B;
  EXPECT_EQ(A.TasksCreated, 7u);
  EXPECT_EQ(A.DequeHighWater, 5);
  EXPECT_EQ(A.PoolOverflows, 3u);
  EXPECT_EQ(A.ArenaHighWater, 9);
  EXPECT_NE(A.summary().find("tasks=7"), std::string::npos);
  EXPECT_NE(A.summary().find("pool_overflows=3"), std::string::npos);
}

TEST(SchedulerBehaviour, TinyPoolCapOverflowsToHeapAndIsCounted) {
  // With a two-chunk pool nearly every frame/workspace allocation falls
  // past the cap onto the heap; the run must still be correct and the
  // cap-overflow frees must show up in the stats.
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::CilkSynched;
  Cfg.NumWorkers = 2;
  Cfg.PoolCap = 2;
  auto R = runProblem(Prob, NQueensArray::makeRoot(8), Cfg);
  EXPECT_EQ(R.Value, 92);
  EXPECT_GT(R.Stats.PoolOverflows, 0u);
  EXPECT_LE(R.Stats.ArenaHighWater, 2);
}

TEST(SchedulerBehaviour, DefaultPoolCapAbsorbsNQueens) {
  // The default cap (SchedulerConfig::PoolCap) comfortably covers the
  // depth-bounded live-frame population: no overflow, and the high-water
  // mark reports the true peak.
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 2;
  auto R = runProblem(Prob, NQueensArray::makeRoot(8), Cfg);
  EXPECT_EQ(R.Value, 92);
  EXPECT_EQ(R.Stats.PoolOverflows, 0u);
  EXPECT_GT(R.Stats.ArenaHighWater, 0);
  EXPECT_LE(R.Stats.ArenaHighWater, Cfg.PoolCap);
}

} // namespace
