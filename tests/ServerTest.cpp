//===- tests/ServerTest.cpp - scheduler-as-a-service layer tests ----------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service layer above the pool: JobQueue fairness and capacity, the
/// JobSpec JSON round trip (canonical spellings, validation errors), the
/// in-process JobServer lifecycle (submit / wait / totals, admission
/// shedding, deadline expiry), and an HTTP smoke test over the loopback
/// wire API.
///
//===----------------------------------------------------------------------===//

#include "problems/ProblemRegistry.h"
#include "server/Server.h"
#include "support/LoopbackHttp.h"
#include "trace/Json.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

using namespace atc;

namespace {

//===----------------------------------------------------------------------===//
// JobQueue
//===----------------------------------------------------------------------===//

TEST(JobQueue, CapacityIsAHardCap) {
  JobQueue Q(2);
  EXPECT_TRUE(Q.push("a", 1));
  EXPECT_TRUE(Q.push("a", 2));
  EXPECT_FALSE(Q.push("a", 3)) << "push past capacity must refuse";
  EXPECT_EQ(Q.size(), 2u);
  std::uint64_t Id = 0;
  ASSERT_TRUE(Q.pop(Id));
  EXPECT_EQ(Id, 1u);
  EXPECT_TRUE(Q.push("a", 3)) << "pop frees capacity";
}

TEST(JobQueue, RoundRobinAcrossTenantsFifoWithin) {
  JobQueue Q(16);
  // Tenant a floods, tenant b trickles: dispatch interleaves 1:1 until
  // b's lane drains, and each lane stays FIFO.
  for (std::uint64_t I = 1; I <= 4; ++I)
    ASSERT_TRUE(Q.push("a", I));
  ASSERT_TRUE(Q.push("b", 10));
  ASSERT_TRUE(Q.push("b", 11));
  EXPECT_EQ(Q.activeTenants(), 2u);
  std::vector<std::uint64_t> Order;
  std::uint64_t Id = 0;
  for (int I = 0; I != 6; ++I) {
    ASSERT_TRUE(Q.pop(Id));
    Order.push_back(Id);
  }
  EXPECT_EQ(Order, (std::vector<std::uint64_t>{1, 10, 2, 11, 3, 4}));
  EXPECT_EQ(Q.size(), 0u);
  EXPECT_EQ(Q.activeTenants(), 0u);
}

TEST(JobQueue, CloseDrainsThenRefuses) {
  JobQueue Q(8);
  ASSERT_TRUE(Q.push("a", 1));
  Q.close();
  EXPECT_FALSE(Q.push("a", 2)) << "push after close must refuse";
  std::uint64_t Id = 0;
  EXPECT_TRUE(Q.pop(Id)) << "pop drains queued work after close";
  EXPECT_EQ(Id, 1u);
  EXPECT_FALSE(Q.pop(Id)) << "then reports closed";
}

TEST(JobQueue, PopBlocksUntilPush) {
  JobQueue Q(8);
  std::uint64_t Got = 0;
  std::thread Popper([&] {
    std::uint64_t Id = 0;
    if (Q.pop(Id))
      Got = Id;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(Q.push("a", 42));
  Popper.join();
  EXPECT_EQ(Got, 42u);
}

//===----------------------------------------------------------------------===//
// JobSpec JSON round trip
//===----------------------------------------------------------------------===//

TEST(JobSpecJson, MinimalSpecGetsDefaults) {
  JobSpec S;
  std::string Err;
  ASSERT_TRUE(parseJobSpec(R"({"problem": "fib"})", S, Err)) << Err;
  EXPECT_EQ(S.Problem, "fib");
  EXPECT_EQ(S.Size, problemDefaultSize("fib")) << "0 resolves the default";
  EXPECT_EQ(S.Tenant, "default");
  EXPECT_EQ(S.Kind, SchedulerKind::AdaptiveTC);
  EXPECT_EQ(S.Workers, 0);
  EXPECT_EQ(S.DeadlineMs, 0);
}

TEST(JobSpecJson, FullSpecRoundTrips) {
  const std::string Text =
      R"({"problem": "nqueens-array", "size": 9, "tenant": "alice",)"
      R"( "scheduler": "cilk-synched", "workers": 2, "deque": "chaselev",)"
      R"( "steal": "half", "victim": "random", "cutoff": 5,)"
      R"( "deadline_ms": 2000})";
  JobSpec S;
  std::string Err;
  ASSERT_TRUE(parseJobSpec(Text, S, Err)) << Err;
  EXPECT_EQ(S.Problem, "nqueens-array");
  EXPECT_EQ(S.Size, 9);
  EXPECT_EQ(S.Tenant, "alice");
  EXPECT_EQ(S.Kind, SchedulerKind::CilkSynched);
  EXPECT_EQ(S.Workers, 2);
  EXPECT_EQ(S.Deque, DequeKind::ChaseLev);
  EXPECT_EQ(S.Steal, StealPolicy::Half);
  EXPECT_EQ(S.Victim, VictimPolicy::Random);
  EXPECT_EQ(S.Cutoff, 5);
  EXPECT_EQ(S.DeadlineMs, 2000);

  // Render and re-parse: the wire form is its own fixed point.
  JobSpec S2;
  ASSERT_TRUE(parseJobSpec(jobSpecJson(S), S2, Err)) << Err;
  EXPECT_EQ(S2.Problem, S.Problem);
  EXPECT_EQ(S2.Size, S.Size);
  EXPECT_EQ(S2.Tenant, S.Tenant);
  EXPECT_EQ(S2.Kind, S.Kind);
  EXPECT_EQ(S2.Workers, S.Workers);
  EXPECT_EQ(S2.Deque, S.Deque);
  EXPECT_EQ(S2.Steal, S.Steal);
  EXPECT_EQ(S2.Victim, S.Victim);
  EXPECT_EQ(S2.Cutoff, S.Cutoff);
  EXPECT_EQ(S2.DeadlineMs, S.DeadlineMs);
}

TEST(JobSpecJson, KindSpellingsCanonicalize) {
  // Like the scheduler-kind parsers: case-insensitive, "-"/"_"
  // interchangeable; the parsed spec carries the canonical spelling.
  JobSpec S;
  std::string Err;
  ASSERT_TRUE(parseJobSpec(
      R"({"problem": "NQueens_Array", "scheduler": "Cilk-SYNCHED"})", S, Err))
      << Err;
  EXPECT_EQ(S.Problem, "nqueens-array");
  EXPECT_EQ(S.Kind, SchedulerKind::CilkSynched);
}

TEST(JobSpecJson, RejectsBadSpecs) {
  JobSpec S;
  std::string Err;
  EXPECT_FALSE(parseJobSpec("{}", S, Err)) << "missing problem";
  EXPECT_FALSE(parseJobSpec(R"({"problem": "no-such-kind"})", S, Err));
  EXPECT_FALSE(parseJobSpec(R"({"problem": "fib", "size": 99})", S, Err))
      << "size out of the kind's range";
  EXPECT_FALSE(parseJobSpec(R"({"problem": "fib", "size": 1.5})", S, Err))
      << "non-integer size";
  EXPECT_FALSE(
      parseJobSpec(R"({"problem": "fib", "scheduler": "magic"})", S, Err));
  EXPECT_FALSE(parseJobSpec("not json at all", S, Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// JobServer, in-process API
//===----------------------------------------------------------------------===//

JobServerOptions inProcessOptions() {
  JobServerOptions O;
  O.PoolThreads = 2;
  O.HttpPort = -1; // In-process only.
  return O;
}

TEST(JobServer, SubmitRunWaitMatchesOracle) {
  JobServer Server(inProcessOptions());
  ASSERT_TRUE(Server.start());

  ProblemRunner Oracle;
  std::string Err;
  ASSERT_TRUE(makeProblemRunner("nqueens-array", 9, Oracle, Err)) << Err;
  const long long Expected = Oracle.RunSequential();

  std::vector<std::uint64_t> Ids;
  for (int I = 0; I != 8; ++I) {
    JobSpec Spec;
    Spec.Problem = "nqueens-array";
    Spec.Size = 9;
    Spec.Tenant = I % 2 ? "alice" : "bob";
    JobServer::SubmitResult R = Server.submit(Spec);
    ASSERT_TRUE(R.Accepted) << R.Reason;
    Ids.push_back(R.Id);
  }
  for (std::uint64_t Id : Ids) {
    JobRecord Rec;
    ASSERT_TRUE(Server.waitResult(Id, Rec, 30000)) << "id " << Id;
    EXPECT_EQ(Rec.State, JobState::Done) << Rec.Error;
    EXPECT_EQ(Rec.Value, Expected);
    EXPECT_GT(Rec.latencyNs(), 0u);
    EXPECT_GT(Rec.Stats.TasksCreated + Rec.Stats.FakeTasks, 0u);
  }
  JobServer::Totals T = Server.totals();
  EXPECT_EQ(T.Submitted, 8u);
  EXPECT_EQ(T.Completed, 8u);
  EXPECT_EQ(T.Shed, 0u);
  EXPECT_EQ(T.Failed, 0u);
  EXPECT_GT(Server.latencyQuantileNs(0.5), 0.0);
  Server.stop();
}

TEST(JobServer, QueueFullShedsWithRecord) {
  JobServerOptions O = inProcessOptions();
  O.MaxQueuedJobs = 2;
  // Never started: nothing drains the queue, so admission is exact.
  JobServer Server(O);
  JobSpec Spec;
  Spec.Problem = "fib";
  Spec.Size = 10;
  EXPECT_TRUE(Server.submit(Spec).Accepted);
  EXPECT_TRUE(Server.submit(Spec).Accepted);
  JobServer::SubmitResult Third = Server.submit(Spec);
  EXPECT_FALSE(Third.Accepted);
  EXPECT_EQ(Third.Reason, "queue-full");
  // Shed submissions are never silently lost: the id resolves to a
  // terminal record carrying the reason.
  JobRecord Rec;
  ASSERT_TRUE(Server.getResult(Third.Id, Rec));
  EXPECT_EQ(Rec.State, JobState::Shed);
  EXPECT_EQ(Rec.Error, "queue-full");
  JobServer::Totals T = Server.totals();
  EXPECT_EQ(T.Submitted, 3u);
  EXPECT_EQ(T.Shed, 1u);
  EXPECT_EQ(T.Queued, 2u);
}

TEST(JobServer, BackpressureShedsPastBothWatermarks) {
  JobServerOptions O = inProcessOptions();
  O.QueueSoftWatermark = 1;
  O.DequeDepthWatermark = 4;
  JobServer Server(O); // Not started: queue depth stays where we put it.
  JobSpec Spec;
  Spec.Problem = "fib";
  Spec.Size = 10;
  // Below the soft watermark the depth check never applies.
  EXPECT_TRUE(Server.submit(Spec).Accepted);
  // Past the soft watermark but with shallow deques: still admitted.
  EXPECT_TRUE(Server.submit(Spec).Accepted);
  // Deep live deques + queue past the watermark: shed as backpressure.
  Server.registry().cell(0).dequeDepthGauge().store(
      5, std::memory_order_relaxed);
  JobServer::SubmitResult R = Server.submit(Spec);
  EXPECT_FALSE(R.Accepted);
  EXPECT_EQ(R.Reason, "backpressure");
  // Depth back under the watermark: admission recovers.
  Server.registry().cell(0).dequeDepthGauge().store(
      0, std::memory_order_relaxed);
  EXPECT_TRUE(Server.submit(Spec).Accepted);
}

TEST(JobServer, NarrowJobsNeverShrinkTheSharedRegistry) {
  // Regression: a spec with workers < pool width used to make the
  // runtime reset (reallocate) the server's shared registry down to the
  // job's width, a use-after-free for HTTP threads iterating the cells
  // concurrently. The registry must stay permanently sized to the pool.
  JobServer Server(inProcessOptions()); // PoolThreads = 2.
  ASSERT_TRUE(Server.start());
  ASSERT_EQ(Server.registry().numWorkers(), 2);
  JobSpec Spec;
  Spec.Problem = "fib";
  Spec.Size = 15;
  Spec.Workers = 1; // Narrower than the pool.
  JobServer::SubmitResult R = Server.submit(Spec);
  ASSERT_TRUE(R.Accepted) << R.Reason;
  JobRecord Rec;
  ASSERT_TRUE(Server.waitResult(R.Id, Rec, 30000));
  EXPECT_EQ(Rec.State, JobState::Done) << Rec.Error;
  EXPECT_EQ(Server.registry().numWorkers(), 2)
      << "narrow job must re-arm cells in place, not resize";
#if ATC_METRICS_ENABLED
  EXPECT_EQ(Server.registry().Meta.Source, "server")
      << "the runtime must not stomp the owner's Meta";
#endif
  Server.stop();
}

TEST(JobServer, DeadlineExpiresWhileQueued) {
  JobServer Server(inProcessOptions());
  JobSpec Spec;
  Spec.Problem = "nqueens-array";
  Spec.Size = 8;
  Spec.DeadlineMs = 1;
  // Submit before the dispatcher exists, let the deadline lapse, then
  // start: the dispatcher must expire it instead of running it.
  JobServer::SubmitResult R = Server.submit(Spec);
  ASSERT_TRUE(R.Accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(Server.start());
  JobRecord Rec;
  ASSERT_TRUE(Server.waitResult(R.Id, Rec, 10000));
  EXPECT_EQ(Rec.State, JobState::Expired);
  EXPECT_EQ(Server.totals().Expired, 1u);
  Server.stop();
}

TEST(JobServer, BadSpecFailsAtDispatchNotSilently) {
  JobServer Server(inProcessOptions());
  ASSERT_TRUE(Server.start());
  // parseJobSpec would catch this on the wire; the in-process API takes
  // the spec verbatim, so the dispatcher's own validation must fire.
  JobSpec Spec;
  Spec.Problem = "no-such-problem";
  JobServer::SubmitResult R = Server.submit(Spec);
  ASSERT_TRUE(R.Accepted);
  JobRecord Rec;
  ASSERT_TRUE(Server.waitResult(R.Id, Rec, 10000));
  EXPECT_EQ(Rec.State, JobState::Failed);
  EXPECT_FALSE(Rec.Error.empty());
  EXPECT_EQ(Server.totals().Failed, 1u);
  Server.stop();
}

TEST(JobServer, StopDrainsQueuedJobs) {
  JobServer Server(inProcessOptions());
  ASSERT_TRUE(Server.start());
  std::vector<std::uint64_t> Ids;
  for (int I = 0; I != 4; ++I) {
    JobSpec Spec;
    Spec.Problem = "fib";
    Spec.Size = 15;
    JobServer::SubmitResult R = Server.submit(Spec);
    ASSERT_TRUE(R.Accepted);
    Ids.push_back(R.Id);
  }
  Server.stop(); // Graceful: every queued job still runs.
  for (std::uint64_t Id : Ids) {
    JobRecord Rec;
    ASSERT_TRUE(Server.getResult(Id, Rec));
    EXPECT_EQ(Rec.State, JobState::Done) << "id " << Id;
  }
  EXPECT_EQ(Server.totals().Completed, 4u);
}

//===----------------------------------------------------------------------===//
// HTTP smoke
//===----------------------------------------------------------------------===//

TEST(JobServerHttp, WireApiSmoke) {
  JobServerOptions O;
  O.PoolThreads = 2;
  O.HttpPort = 0; // Ephemeral.
  O.HttpThreads = 2;
  JobServer Server(O);
  ASSERT_TRUE(Server.start());
  const int Port = Server.httpPort();
  ASSERT_GT(Port, 0);

  int Status = 0;
  std::string Body;

  ASSERT_TRUE(httpRequest(Port, "GET", "/healthz", "", Status, Body));
  EXPECT_EQ(Status, 200);
  EXPECT_NE(Body.find("\"ok\""), std::string::npos);

  ASSERT_TRUE(httpRequest(Port, "POST", "/job",
                          R"({"problem": "nqueens-array", "size": 8})",
                          Status, Body));
  ASSERT_EQ(Status, 200) << Body;
  json::Value Resp;
  std::string Err;
  ASSERT_TRUE(json::parse(Body, Resp, Err)) << Body;
  const auto Id = static_cast<std::uint64_t>(Resp["id"].numberOr(0));
  ASSERT_GT(Id, 0u);

  ASSERT_TRUE(httpRequest(Port, "GET",
                          "/result/" + std::to_string(Id) + "?wait=20000", "",
                          Status, Body));
  ASSERT_EQ(Status, 200) << Body;
  json::Value Rec;
  ASSERT_TRUE(json::parse(Body, Rec, Err)) << Body;
  EXPECT_EQ(Rec["state"].stringOr(""), "done") << Body;
  ProblemRunner Oracle;
  ASSERT_TRUE(makeProblemRunner("nqueens-array", 8, Oracle, Err)) << Err;
  EXPECT_EQ(static_cast<long long>(Rec["value"].numberOr(-1)),
            Oracle.RunSequential());

  ASSERT_TRUE(httpRequest(Port, "GET", "/result/999999", "", Status, Body));
  EXPECT_EQ(Status, 404);

  ASSERT_TRUE(httpRequest(Port, "POST", "/job", "{broken", Status, Body));
  EXPECT_EQ(Status, 400);

  // Parse errors echo client input; the 400 body must stay valid JSON
  // even when that input contains a quote.
  ASSERT_TRUE(httpRequest(Port, "POST", "/job",
                          R"({"problem": "no\"such\"kind"})", Status, Body));
  EXPECT_EQ(Status, 400);
  json::Value ErrDoc;
  EXPECT_TRUE(json::parse(Body, ErrDoc, Err)) << Body;

  ASSERT_TRUE(httpRequest(Port, "GET", "/metrics", "", Status, Body));
  EXPECT_EQ(Status, 200);
  EXPECT_NE(Body.find("atc_jobs_submitted_total"), std::string::npos);
  EXPECT_NE(Body.find("atc_job_latency_ns_bucket"), std::string::npos);
  EXPECT_NE(Body.find("atc_epoch"), std::string::npos);

  ASSERT_TRUE(httpRequest(Port, "GET", "/stats", "", Status, Body));
  EXPECT_EQ(Status, 200);
  json::Value Stats;
  ASSERT_TRUE(json::parse(Body, Stats, Err)) << Body;
  EXPECT_EQ(static_cast<int>(Stats["completed"].numberOr(-1)), 1);

  EXPECT_FALSE(Server.shutdownRequested());
  ASSERT_TRUE(httpRequest(Port, "POST", "/shutdown", "", Status, Body));
  EXPECT_EQ(Status, 200);
  EXPECT_TRUE(Server.shutdownRequested());
  Server.stop();
}

} // namespace
