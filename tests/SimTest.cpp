//===- tests/SimTest.cpp - simulator unit and property tests --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sim/SimEngine.h"
#include "sim/TreeGen.h"

#include <gtest/gtest.h>

using namespace atc;

namespace {

constexpr long long TestScale = 40'000;

SimReport runSim(const std::string &Preset, SchedulerKind Kind, int Workers,
                 long long Scale = TestScale, int Cutoff = -1) {
  SimTree Tree(SimTree::preset(Preset, Scale));
  SimOptions Opts;
  Opts.Kind = Kind;
  Opts.NumWorkers = Workers;
  Opts.Cutoff = Cutoff;
  CostModel Costs; // defaults
  return simulate(Tree, Opts, Costs);
}

//===----------------------------------------------------------------------===//
// Tree generation
//===----------------------------------------------------------------------===//

class TreePresets : public ::testing::TestWithParam<std::string> {};

TEST_P(TreePresets, SizesPartitionExactly) {
  SimTree Tree(SimTree::preset(GetParam(), 20'000));
  auto Stats = Tree.walk();
  EXPECT_EQ(Stats.Nodes, 20'000) << GetParam();
  EXPECT_GT(Stats.Leaves, 0);
  EXPECT_GT(Stats.MaxDepth, 1);
}

TEST_P(TreePresets, DeterministicAcrossWalks) {
  SimTree A(SimTree::preset(GetParam(), 20'000));
  SimTree B(SimTree::preset(GetParam(), 20'000));
  auto SA = A.walk();
  auto SB = B.walk();
  EXPECT_EQ(SA.Nodes, SB.Nodes);
  EXPECT_EQ(SA.Leaves, SB.Leaves);
  EXPECT_EQ(SA.MaxDepth, SB.MaxDepth);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, TreePresets,
                         ::testing::ValuesIn(SimTree::presetNames()));

TEST(TreeGen, Tree1Depth1SharesMatchTable3) {
  SimTree Tree(SimTree::preset("tree1l", 1'000'000));
  auto Shares = Tree.depth1SharePercent();
  ASSERT_EQ(Shares.size(), 7u);
  // Published (sorted desc): 42.512, 25.362, 13.019, 11.771, 4.936,
  // 1.984, 0.416.
  EXPECT_NEAR(Shares[0], 42.512, 0.5);
  EXPECT_NEAR(Shares[1], 25.362, 0.5);
  EXPECT_NEAR(Shares[2], 13.019, 0.5);
}

TEST(TreeGen, MirrorReversesDepth1Shares) {
  SimTree L(SimTree::preset("tree3l", 500'000));
  SimTree R(SimTree::preset("tree3r", 500'000));
  auto SL = L.depth1SharePercent();
  auto SR = R.depth1SharePercent();
  ASSERT_EQ(SL.size(), SR.size());
  for (std::size_t I = 0; I < SL.size(); ++I)
    EXPECT_DOUBLE_EQ(SL[I], SR[SR.size() - 1 - I]);
}

TEST(TreeGen, Tree3IsMostUnbalanced) {
  // "Tree3 is the most unbalanced one among these trees."
  auto First = [](const std::string &Name) {
    return SimTree(SimTree::preset(Name, 500'000)).depth1SharePercent()[0];
  };
  EXPECT_LT(First("tree1l"), First("tree2l"));
  EXPECT_LT(First("tree2l"), First("tree3l"));
}

TEST(TreeGen, BalancedPresetSplitsEvenly) {
  SimTree Tree(SimTree::preset("balanced", 100'000));
  auto Shares = Tree.depth1SharePercent();
  ASSERT_GE(Shares.size(), 4u);
  double Max = *std::max_element(Shares.begin(), Shares.end());
  double Min = *std::min_element(Shares.begin(), Shares.end());
  EXPECT_LT(Max / Min, 1.5);
}

TEST(TreeGen, LeafHasNoChildren) {
  SimTree Tree(SimTree::preset("balanced", 1000));
  std::vector<SimTreeNode> Kids;
  Tree.children({123, 1, 5}, Kids);
  EXPECT_TRUE(Kids.empty());
}

//===----------------------------------------------------------------------===//
// Simulation: conservation and determinism
//===----------------------------------------------------------------------===//

struct SimCase {
  SchedulerKind Kind;
  int Workers;
};

class SimMatrix : public ::testing::TestWithParam<SimCase> {};

TEST_P(SimMatrix, ProcessesEveryNodeOnUnbalancedTree) {
  SimReport R = runSim("tree2l", GetParam().Kind, GetParam().Workers);
  EXPECT_EQ(R.NodesProcessed, TestScale);
  EXPECT_GT(R.MakespanNs, 0.0);
  EXPECT_GE(R.Total.WorkNs, R.SerialNs * 0.999);
}

TEST_P(SimMatrix, ProcessesEveryNodeOnBalancedTree) {
  SimReport R = runSim("balanced", GetParam().Kind, GetParam().Workers);
  EXPECT_EQ(R.NodesProcessed, TestScale);
}

TEST_P(SimMatrix, DeterministicReport) {
  SimReport A = runSim("fig8", GetParam().Kind, GetParam().Workers);
  SimReport B = runSim("fig8", GetParam().Kind, GetParam().Workers);
  EXPECT_DOUBLE_EQ(A.MakespanNs, B.MakespanNs);
  EXPECT_EQ(A.Steals, B.Steals);
  EXPECT_EQ(A.TasksCreated, B.TasksCreated);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, SimMatrix,
    ::testing::Values(SimCase{SchedulerKind::Cilk, 1},
                      SimCase{SchedulerKind::Cilk, 4},
                      SimCase{SchedulerKind::Cilk, 8},
                      SimCase{SchedulerKind::CilkSynched, 8},
                      SimCase{SchedulerKind::Cutoff, 8},
                      SimCase{SchedulerKind::AdaptiveTC, 1},
                      SimCase{SchedulerKind::AdaptiveTC, 4},
                      SimCase{SchedulerKind::AdaptiveTC, 8},
                      SimCase{SchedulerKind::Tascell, 4},
                      SimCase{SchedulerKind::Tascell, 8}),
    [](const ::testing::TestParamInfo<SimCase> &Info) {
      std::string Name = schedulerKindName(Info.param.Kind);
      for (char &Ch : Name)
        if (Ch == '-')
          Ch = '_';
      return Name + "_w" + std::to_string(Info.param.Workers);
    });

//===----------------------------------------------------------------------===//
// Simulation: deque / steal / victim policy knobs
//===----------------------------------------------------------------------===//

SimReport runSimPolicies(const std::string &Preset, SchedulerKind Kind,
                         int Workers, DequeKind DQ, StealPolicy SP,
                         VictimPolicy VP) {
  SimTree Tree(SimTree::preset(Preset, TestScale));
  SimOptions Opts;
  Opts.Kind = Kind;
  Opts.NumWorkers = Workers;
  Opts.Deque = DQ;
  Opts.Steal = SP;
  Opts.Victim = VP;
  Opts.VictimGroupSize = 2;
  CostModel Costs;
  return simulate(Tree, Opts, Costs);
}

TEST(SimPolicies, EveryCombinationProcessesEveryNode) {
  for (SchedulerKind Kind : {SchedulerKind::Cilk, SchedulerKind::AdaptiveTC,
                             SchedulerKind::Tascell})
    for (DequeKind DQ : {DequeKind::The, DequeKind::ChaseLev})
      for (StealPolicy SP : {StealPolicy::One, StealPolicy::Half})
        for (VictimPolicy VP : {VictimPolicy::Random, VictimPolicy::Affinity,
                                VictimPolicy::Partitioned}) {
          SimReport R = runSimPolicies("tree2l", Kind, 8, DQ, SP, VP);
          EXPECT_EQ(R.NodesProcessed, TestScale)
              << schedulerKindName(Kind) << "/" << dequeKindName(DQ) << "/"
              << stealPolicyName(SP) << "/" << victimPolicyName(VP);
        }
}

TEST(SimPolicies, PolicyRunsAreDeterministic) {
  for (VictimPolicy VP : {VictimPolicy::Affinity, VictimPolicy::Partitioned}) {
    SimReport A = runSimPolicies("fig8", SchedulerKind::AdaptiveTC, 8,
                                 DequeKind::ChaseLev, StealPolicy::Half, VP);
    SimReport B = runSimPolicies("fig8", SchedulerKind::AdaptiveTC, 8,
                                 DequeKind::ChaseLev, StealPolicy::Half, VP);
    EXPECT_DOUBLE_EQ(A.MakespanNs, B.MakespanNs);
    EXPECT_EQ(A.Steals, B.Steals);
  }
}

TEST(SimPolicies, LockFreeClaimIsNeverChargedMoreThanTheLock) {
  // Identical runs except the per-claim cost: the lock-free deques charge
  // CasStealNs (< StealNs), so total idle time cannot grow.
  SimTree Tree(SimTree::preset("tree3l", TestScale));
  CostModel Costs;
  SimOptions Opts;
  Opts.Kind = SchedulerKind::Cilk;
  Opts.NumWorkers = 8;
  Opts.Deque = DequeKind::The;
  SimReport Lock = simulate(Tree, Opts, Costs);
  Opts.Deque = DequeKind::ChaseLev;
  SimReport Cas = simulate(Tree, Opts, Costs);
  EXPECT_EQ(Lock.NodesProcessed, Cas.NodesProcessed);
  // Cheaper claims may reshuffle the interleaving, so compare with slack
  // rather than strictly.
  EXPECT_LE(Cas.MakespanNs, Lock.MakespanNs * 1.02);
}

//===----------------------------------------------------------------------===//
// Simulation: qualitative shapes from the paper
//===----------------------------------------------------------------------===//

TEST(SimShapes, AllSystemsScaleOnBalancedTrees) {
  for (SchedulerKind Kind :
       {SchedulerKind::Cilk, SchedulerKind::CilkSynched,
        SchedulerKind::AdaptiveTC, SchedulerKind::Tascell}) {
    SimReport W1 = runSim("balanced", Kind, 1);
    SimReport W8 = runSim("balanced", Kind, 8);
    EXPECT_GT(W8.speedup(), W1.speedup() * 3)
        << schedulerKindName(Kind) << " should scale on balanced trees";
    EXPECT_GT(W8.speedup(), 3.0) << schedulerKindName(Kind);
  }
}

TEST(SimShapes, SingleWorkerOverheadOrdering) {
  // Table 2 / Figure 6: 1-thread overhead of AdaptiveTC is below Cilk's;
  // Cilk-SYNCHED sits between.
  SimReport Cilk = runSim("balanced", SchedulerKind::Cilk, 1);
  SimReport Syn = runSim("balanced", SchedulerKind::CilkSynched, 1);
  SimReport Atc = runSim("balanced", SchedulerKind::AdaptiveTC, 1);
  EXPECT_LT(Atc.MakespanNs, Syn.MakespanNs);
  EXPECT_LE(Syn.MakespanNs, Cilk.MakespanNs);
  // AdaptiveTC's 1-worker run is nearly pure work (poll per node only).
  EXPECT_LT(Atc.MakespanNs / Atc.SerialNs, 1.2);
  EXPECT_GT(Cilk.MakespanNs / Cilk.SerialNs, 1.2);
}

TEST(SimShapes, AdaptiveTCCreatesFarFewerTasksThanCilk) {
  SimReport Cilk = runSim("fig8", SchedulerKind::Cilk, 8);
  SimReport Atc = runSim("fig8", SchedulerKind::AdaptiveTC, 8);
  EXPECT_LT(Atc.TasksCreated, Cilk.TasksCreated / 20);
  EXPECT_LT(Atc.MaxStealableFrames, Cilk.MaxStealableFrames)
      << "AdaptiveTC is less prone to deque overflow";
}

TEST(SimShapes, AdaptiveTCPublishesSpecialTasksUnderPressure) {
  SimReport R = runSim("fig8", SchedulerKind::AdaptiveTC, 8);
  EXPECT_GT(R.SpecialTasks, 0u)
      << "unbalanced trees must trigger check->fast_2 transitions";
}

TEST(SimShapes, CutoffStarvesOnUnbalancedTreeAdaptiveTCDoesNot) {
  // Figure 9: fixed cut-off strategies starve with > 4 threads on the
  // Sudoku input1 tree; AdaptiveTC keeps scaling. Needs paper-like scale:
  // at tiny tree sizes the need_task publish latency dominates
  // AdaptiveTC.
  constexpr long long Fig9Scale = 2'000'000;
  SimReport Cut4 = runSim("fig8", SchedulerKind::Cutoff, 4, Fig9Scale,
                          /*Cutoff=*/3);
  SimReport Cut8 = runSim("fig8", SchedulerKind::Cutoff, 8, Fig9Scale,
                          /*Cutoff=*/3);
  SimReport Atc8 = runSim("fig8", SchedulerKind::AdaptiveTC, 8, Fig9Scale);
  // Cut-off plateaus beyond 4 threads (starvation)...
  EXPECT_LT(Cut8.speedup() - Cut4.speedup(), 0.3 * Cut4.speedup());
  // ...while AdaptiveTC keeps scaling and ends on top.
  EXPECT_GT(Atc8.speedup(), Cut8.speedup());
  EXPECT_GT(Atc8.speedup(), 5.0);
}

TEST(SimShapes, CutoffLibraryPaysCopiesEverywhere) {
  SimTree Tree(SimTree::preset("fig8", TestScale));
  CostModel Costs;
  SimOptions Opts;
  Opts.Kind = SchedulerKind::Cutoff;
  Opts.NumWorkers = 8;
  Opts.Cutoff = 3;
  SimReport Programmer = simulate(Tree, Opts, Costs);
  Opts.CutoffCopiesEverywhere = true;
  SimReport Library = simulate(Tree, Opts, Costs);
  EXPECT_GT(Library.Copies, Programmer.Copies * 10);
  EXPECT_LT(Library.speedup(), Programmer.speedup());
}

TEST(SimShapes, TascellWaitsMoreOnRightHeavyTrees) {
  // Figure 10 / Section 5.3.2: Tascell spends far more time waiting for
  // children on right-heavy trees (8.08% on Tree3L vs 51.99% on Tree3R).
  SimReport L = runSim("tree3l", SchedulerKind::Tascell, 8);
  SimReport R = runSim("tree3r", SchedulerKind::Tascell, 8);
  EXPECT_GT(R.Total.WaitChildrenNs, L.Total.WaitChildrenNs * 1.5);
  EXPECT_GT(L.speedup(), R.speedup());
}

TEST(SimShapes, CilkInsensitiveToTreeOrientation) {
  SimReport L = runSim("tree3l", SchedulerKind::Cilk, 8);
  SimReport R = runSim("tree3r", SchedulerKind::Cilk, 8);
  double Ratio = L.speedup() / R.speedup();
  EXPECT_GT(Ratio, 0.8);
  EXPECT_LT(Ratio, 1.25);
}

TEST(SimShapes, TascellWaitShareGrowsWithThreads) {
  // Figure 7's direction: wait_children's share of Tascell's time grows
  // as workers are added (more donations outstanding at each unwind).
  SimReport W2 = runSim("balanced", SchedulerKind::Tascell, 2);
  SimReport W8 = runSim("balanced", SchedulerKind::Tascell, 8);
  double Share2 = W2.Total.WaitChildrenNs / W2.Total.totalNs();
  double Share8 = W8.Total.WaitChildrenNs / W8.Total.totalNs();
  EXPECT_GT(Share8, Share2);
}

TEST(SimShapes, WorkConservationAcrossAllKinds) {
  // Virtual work must equal the serial total regardless of policy: the
  // simulator may move nodes between workers but never duplicate or drop
  // them.
  for (SchedulerKind Kind :
       {SchedulerKind::Cilk, SchedulerKind::CilkSynched,
        SchedulerKind::Cutoff, SchedulerKind::AdaptiveTC,
        SchedulerKind::Tascell}) {
    SimReport R = runSim("tree1l", Kind, 8);
    EXPECT_NEAR(R.Total.WorkNs, R.SerialNs, R.SerialNs * 1e-9)
        << schedulerKindName(Kind);
  }
}

TEST(SimShapes, TascellPaysNoTaskCreation) {
  SimReport R = runSim("balanced", SchedulerKind::Tascell, 4);
  EXPECT_EQ(R.TasksCreated, 0u);
  EXPECT_GT(R.Requests, 0u);
}

} // namespace
