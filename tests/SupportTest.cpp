//===- tests/SupportTest.cpp - support library unit tests -----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "support/Prng.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

using namespace atc;

TEST(Prng, LcgIsDeterministic) {
  Lcg A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, LcgMatchesRecurrence) {
  // x1 = x0 * A + C (mod 2^64).
  std::uint64_t X0 = 7;
  Lcg G(X0);
  EXPECT_EQ(G.next(), X0 * Lcg::DefaultA + Lcg::DefaultC);
}

TEST(Prng, LcgBoundsRespected) {
  Lcg G(123);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(G.nextBelow(17), 17u);
}

TEST(Prng, LcgDoubleInUnitInterval) {
  Lcg G(99);
  for (int I = 0; I < 1000; ++I) {
    double D = G.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Prng, SplitMixProducesDistinctValues) {
  SplitMix64 G(1);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(G.next());
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(Prng, Mix64IsAPermutationSample) {
  // Distinct inputs must map to distinct outputs for a bijective mixer.
  std::set<std::uint64_t> Seen;
  for (std::uint64_t I = 0; I < 1000; ++I)
    Seen.insert(mix64(I));
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(Stats, MedianOdd) { EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0); }

TEST(Stats, MedianEven) { EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5); }

TEST(Stats, MedianSingle) { EXPECT_DOUBLE_EQ(median({7}), 7.0); }

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5); }

TEST(Stats, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, Geomean) { EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12); }

TEST(Table, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Text = T.renderText();
  EXPECT_NE(Text.find("name    value"), std::string::npos);
  EXPECT_NE(Text.find("longer  22"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  TextTable T;
  T.setHeader({"a"});
  T.addRow({"x,y"});
  EXPECT_NE(T.renderCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, CsvEscapesQuotes) {
  TextTable T;
  T.addRow({"say \"hi\""});
  EXPECT_EQ(T.renderCsv(), "\"say \"\"hi\"\"\"\n");
}

TEST(Table, FmtDouble) { EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14"); }

TEST(Table, FmtInt) { EXPECT_EQ(TextTable::fmt(42LL), "42"); }

TEST(Options, ParsesAllKinds) {
  long long N = 0;
  double X = 0;
  std::string S;
  bool F = false;
  OptionSet Opts;
  Opts.addInt("n", &N, "int");
  Opts.addDouble("x", &X, "double");
  Opts.addString("s", &S, "string");
  Opts.addFlag("f", &F, "flag");
  const char *Argv[] = {"prog", "--n=5", "--x", "2.5", "--s=hello", "--f",
                        "pos1"};
  Opts.parse(7, Argv);
  EXPECT_EQ(N, 5);
  EXPECT_DOUBLE_EQ(X, 2.5);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(F);
  ASSERT_EQ(Opts.positionalArgs().size(), 1u);
  EXPECT_EQ(Opts.positionalArgs()[0], "pos1");
}

TEST(Options, FlagAcceptsExplicitFalse) {
  bool F = true;
  OptionSet Opts;
  Opts.addFlag("f", &F, "flag");
  const char *Argv[] = {"prog", "--f=false"};
  Opts.parse(2, Argv);
  EXPECT_FALSE(F);
}

TEST(Options, UsageMentionsEveryOption) {
  long long N = 0;
  OptionSet Opts("demo");
  Opts.addInt("threads", &N, "worker count");
  std::string U = Opts.usage("prog");
  EXPECT_NE(U.find("--threads=N"), std::string::npos);
  EXPECT_NE(U.find("worker count"), std::string::npos);
}
