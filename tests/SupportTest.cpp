//===- tests/SupportTest.cpp - support library unit tests -----------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"
#include "support/Compiler.h"
#include "support/Options.h"
#include "support/Prng.h"
#include "support/Stats.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

using namespace atc;

TEST(Prng, LcgIsDeterministic) {
  Lcg A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Prng, LcgMatchesRecurrence) {
  // x1 = x0 * A + C (mod 2^64).
  std::uint64_t X0 = 7;
  Lcg G(X0);
  EXPECT_EQ(G.next(), X0 * Lcg::DefaultA + Lcg::DefaultC);
}

TEST(Prng, LcgBoundsRespected) {
  Lcg G(123);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(G.nextBelow(17), 17u);
}

TEST(Prng, LcgDoubleInUnitInterval) {
  Lcg G(99);
  for (int I = 0; I < 1000; ++I) {
    double D = G.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Prng, SplitMixProducesDistinctValues) {
  SplitMix64 G(1);
  std::set<std::uint64_t> Seen;
  for (int I = 0; I < 1000; ++I)
    Seen.insert(G.next());
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(Prng, Mix64IsAPermutationSample) {
  // Distinct inputs must map to distinct outputs for a bijective mixer.
  std::set<std::uint64_t> Seen;
  for (std::uint64_t I = 0; I < 1000; ++I)
    Seen.insert(mix64(I));
  EXPECT_EQ(Seen.size(), 1000u);
}

TEST(Stats, MedianOdd) { EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0); }

TEST(Stats, MedianEven) { EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5); }

TEST(Stats, MedianSingle) { EXPECT_DOUBLE_EQ(median({7}), 7.0); }

TEST(Stats, Mean) { EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5); }

TEST(Stats, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev({5, 5, 5}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  // Sample stddev of {2, 4, 4, 4, 5, 5, 7, 9} is sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, Geomean) { EXPECT_NEAR(geomean({1, 4}), 2.0, 1e-12); }

TEST(Table, AlignsColumns) {
  TextTable T;
  T.setHeader({"name", "value"});
  T.addRow({"x", "1"});
  T.addRow({"longer", "22"});
  std::string Text = T.renderText();
  EXPECT_NE(Text.find("name    value"), std::string::npos);
  EXPECT_NE(Text.find("longer  22"), std::string::npos);
}

TEST(Table, CsvEscapesCommas) {
  TextTable T;
  T.setHeader({"a"});
  T.addRow({"x,y"});
  EXPECT_NE(T.renderCsv().find("\"x,y\""), std::string::npos);
}

TEST(Table, CsvEscapesQuotes) {
  TextTable T;
  T.addRow({"say \"hi\""});
  EXPECT_EQ(T.renderCsv(), "\"say \"\"hi\"\"\"\n");
}

TEST(Table, FmtDouble) { EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14"); }

TEST(Table, FmtInt) { EXPECT_EQ(TextTable::fmt(42LL), "42"); }

TEST(Options, ParsesAllKinds) {
  long long N = 0;
  double X = 0;
  std::string S;
  bool F = false;
  OptionSet Opts;
  Opts.addInt("n", &N, "int");
  Opts.addDouble("x", &X, "double");
  Opts.addString("s", &S, "string");
  Opts.addFlag("f", &F, "flag");
  const char *Argv[] = {"prog", "--n=5", "--x", "2.5", "--s=hello", "--f",
                        "pos1"};
  Opts.parse(7, Argv);
  EXPECT_EQ(N, 5);
  EXPECT_DOUBLE_EQ(X, 2.5);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(F);
  ASSERT_EQ(Opts.positionalArgs().size(), 1u);
  EXPECT_EQ(Opts.positionalArgs()[0], "pos1");
}

TEST(Options, FlagAcceptsExplicitFalse) {
  bool F = true;
  OptionSet Opts;
  Opts.addFlag("f", &F, "flag");
  const char *Argv[] = {"prog", "--f=false"};
  Opts.parse(2, Argv);
  EXPECT_FALSE(F);
}

TEST(Options, UsageMentionsEveryOption) {
  long long N = 0;
  OptionSet Opts("demo");
  Opts.addInt("threads", &N, "worker count");
  std::string U = Opts.usage("prog");
  EXPECT_NE(U.find("--threads=N"), std::string::npos);
  EXPECT_NE(U.find("worker count"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Arena: slab allocation, recycling, overflow, remote frees
//===----------------------------------------------------------------------===//

TEST(SlabArena, CarvesAlignedDistinctChunks) {
  SlabArena A(24, 8);
  EXPECT_GE(A.chunkBytes(), 24u);
  EXPECT_EQ(A.chunkBytes() % ATC_CACHE_LINE_SIZE, 0u);
  std::set<void *> Seen;
  for (int I = 0; I < 8; ++I) {
    SlabArena::Alloc R = A.alloc();
    EXPECT_TRUE(R.Fresh);
    EXPECT_TRUE(A.fromSlab(R.Ptr));
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(R.Ptr) %
                  ATC_CACHE_LINE_SIZE,
              0u);
    Seen.insert(R.Ptr);
  }
  EXPECT_EQ(Seen.size(), 8u);
  EXPECT_EQ(A.stats().SlabAllocs, 8u);
  EXPECT_EQ(A.stats().HeapAllocs, 0u);
}

TEST(SlabArena, FreeRecyclesLifoWithoutFreshFlag) {
  SlabArena A(16, 4);
  void *P = A.alloc().Ptr;
  A.free(P);
  SlabArena::Alloc R = A.alloc();
  EXPECT_EQ(R.Ptr, P);
  EXPECT_FALSE(R.Fresh);
}

TEST(SlabArena, OverflowFallsBackToHeapAndCountsFrees) {
  SlabArena A(16, 2);
  void *S0 = A.alloc().Ptr;
  void *S1 = A.alloc().Ptr;
  SlabArena::Alloc H = A.alloc(); // past the cap
  EXPECT_TRUE(H.Fresh);
  EXPECT_FALSE(A.fromSlab(H.Ptr));
  EXPECT_EQ(A.stats().HeapAllocs, 1u);
  A.free(H.Ptr);
  EXPECT_EQ(A.stats().OverflowFrees, 1u);
  A.free(S0);
  A.free(S1);
  EXPECT_EQ(A.stats().OverflowFrees, 1u); // slab frees are not overflows
}

TEST(SlabArena, HighWaterTracksPeakLiveChunks) {
  SlabArena A(16, 8);
  void *P0 = A.alloc().Ptr;
  void *P1 = A.alloc().Ptr;
  void *P2 = A.alloc().Ptr;
  EXPECT_EQ(A.stats().HighWater, 3);
  A.free(P2);
  A.free(P1);
  void *P3 = A.alloc().Ptr; // live back to 2: peak stays 3
  EXPECT_EQ(A.stats().HighWater, 3);
  A.free(P3);
  A.free(P0);
}

TEST(SlabArena, RemoteFreesAreDrainedOnFreelistMiss) {
  SlabArena A(32, 4);
  std::vector<void *> Chunks;
  for (int I = 0; I < 4; ++I)
    Chunks.push_back(A.alloc().Ptr);
  std::thread Thief([&] {
    for (void *P : Chunks)
      A.freeRemote(P);
  });
  Thief.join();
  // The slab is fully carved and the local freelist is empty, so the next
  // alloc must refill from the remote stack instead of hitting the heap.
  std::set<void *> Recycled;
  for (int I = 0; I < 4; ++I) {
    SlabArena::Alloc R = A.alloc();
    EXPECT_FALSE(R.Fresh);
    Recycled.insert(R.Ptr);
  }
  EXPECT_EQ(Recycled, std::set<void *>(Chunks.begin(), Chunks.end()));
  EXPECT_EQ(A.stats().HeapAllocs, 0u);
}

TEST(SlabArena, RemoteOverflowFreesAreCountedSeparately) {
  SlabArena A(16, 1);
  void *S = A.alloc().Ptr;
  void *H = A.alloc().Ptr; // heap fallback
  std::thread Thief([&] { A.freeRemote(H); });
  Thief.join();
  EXPECT_EQ(A.remoteOverflowFrees(), 1u);
  EXPECT_EQ(A.stats().OverflowFrees, 0u);
  A.free(S);
}

namespace {

/// Lifetime probe for ObjectArena: first member doubles as the freelist
/// link slot (per the arena contract), Gen survives recycling.
struct ArenaProbe {
  void *Link = nullptr; ///< First member: rewritten after every alloc.
  int Gen = 0;
  static int Ctors;
  static int Dtors;
  ArenaProbe() { ++Ctors; }
  ~ArenaProbe() { ++Dtors; }
};

int ArenaProbe::Ctors = 0;
int ArenaProbe::Dtors = 0;

} // namespace

TEST(ObjectArena, ConstructsOnceAndRecyclesWithoutDestruction) {
  ArenaProbe::Ctors = 0;
  ArenaProbe::Dtors = 0;
  {
    ObjectArena<ArenaProbe> A(4);
    ArenaProbe *P = A.alloc();
    EXPECT_EQ(ArenaProbe::Ctors, 1);
    P->Link = nullptr; // the contract: rewrite the first member
    P->Gen = 7;
    A.free(P);
    ArenaProbe *Q = A.alloc();
    EXPECT_EQ(Q, P);
    EXPECT_EQ(ArenaProbe::Ctors, 1); // recycled, not re-constructed
    EXPECT_EQ(Q->Gen, 7);            // non-link fields survive recycling
    EXPECT_EQ(ArenaProbe::Dtors, 0);
  }
  // Teardown destroys every carved chunk exactly once.
  EXPECT_EQ(ArenaProbe::Dtors, 1);
}

TEST(ObjectArena, HeapOverflowObjectsAreDestroyedEagerly) {
  ArenaProbe::Ctors = 0;
  ArenaProbe::Dtors = 0;
  {
    ObjectArena<ArenaProbe> A(1);
    ArenaProbe *S = A.alloc();
    ArenaProbe *H = A.alloc(); // heap fallback
    EXPECT_EQ(ArenaProbe::Ctors, 2);
    A.free(H);
    EXPECT_EQ(ArenaProbe::Dtors, 1); // overflow chunk destroyed at free
    EXPECT_EQ(A.stats().OverflowFrees, 1u);
    A.free(S);
    EXPECT_EQ(ArenaProbe::Dtors, 1); // slab chunk kept constructed
  }
  EXPECT_EQ(ArenaProbe::Dtors, 2);
}
