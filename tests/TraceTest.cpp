//===- tests/TraceTest.cpp - Event tracing tests --------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the scheduler event tracer (src/trace/): ring-buffer
/// overflow semantics, per-worker event ordering, the Chrome-trace
/// exporter's JSON validity and schema round-trip, the JSON parser, the
/// text summarizer, end-to-end traces from the real runtime and the
/// virtual-time simulator, and the compile-time gate.
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "problems/NQueens.h"
#include "sim/SimEngine.h"
#include "sim/TreeGen.h"
#include "trace/Json.h"
#include "trace/TraceJson.h"
#include "trace/TraceRead.h"
#include "trace/TraceSummary.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <string>

namespace atc {
namespace {

//===----------------------------------------------------------------------===//
// Ring buffer
//===----------------------------------------------------------------------===//

TEST(TraceBuffer, EmitAndRead) {
  TraceBuffer TB;
  TB.init(16);
  TB.emitAt(10, TraceEventKind::SpawnReal, 1, 2);
  TB.emitAt(20, TraceEventKind::StealSuccess, 3);
  ASSERT_EQ(TB.size(), 2u);
  EXPECT_EQ(TB.totalEmitted(), 2u);
  EXPECT_EQ(TB.dropped(), 0u);
  EXPECT_EQ(TB.at(0).TimeNs, 10u);
  EXPECT_EQ(TB.at(0).kind(), TraceEventKind::SpawnReal);
  EXPECT_EQ(TB.at(0).A, 1u);
  EXPECT_EQ(TB.at(0).B, 2u);
  EXPECT_EQ(TB.at(1).kind(), TraceEventKind::StealSuccess);
  EXPECT_EQ(TB.at(1).A, 3u);
}

TEST(TraceBuffer, OverflowDropsOldestFirstAndCounts) {
  TraceBuffer TB;
  TB.init(8);
  for (std::uint64_t I = 0; I < 20; ++I)
    TB.emitAt(I, TraceEventKind::SpawnFake, static_cast<std::uint32_t>(I));
  EXPECT_EQ(TB.size(), 8u);
  EXPECT_EQ(TB.totalEmitted(), 20u);
  EXPECT_EQ(TB.dropped(), 12u);
  // The retained window is the newest 8 events, oldest-first in reader
  // order: 12, 13, ..., 19.
  for (std::size_t I = 0; I < TB.size(); ++I) {
    EXPECT_EQ(TB.at(I).TimeNs, 12 + I);
    EXPECT_EQ(TB.at(I).A, 12 + I);
  }
}

TEST(TraceBuffer, SetModeDedupes) {
  TraceBuffer TB;
  TB.init(16);
  TB.setModeAt(1, TraceMode::Fast);
  TB.setModeAt(2, TraceMode::Fast); // No change: no event.
  TB.setModeAt(3, TraceMode::Check);
  TB.setModeAt(4, TraceMode::Fast);
  ASSERT_EQ(TB.size(), 3u);
  EXPECT_EQ(TB.at(0).kind(), TraceEventKind::ModeBegin);
  EXPECT_EQ(TB.at(0).A, static_cast<std::uint32_t>(TraceMode::Fast));
  EXPECT_EQ(TB.at(1).A, static_cast<std::uint32_t>(TraceMode::Check));
  EXPECT_EQ(TB.at(2).A, static_cast<std::uint32_t>(TraceMode::Fast));
  EXPECT_EQ(TB.mode(), TraceMode::Fast);
}

TEST(TraceBuffer, NullPointerMacroIsSafe) {
  TraceBuffer *TB = nullptr;
  ATC_TRACE_EVENT(TB, TraceEventKind::SpawnReal);
  ATC_TRACE_EVENT_AT(TB, 1, TraceEventKind::SpawnReal);
  ATC_TRACE_MODE_AT(TB, 1, TraceMode::Fast);
  TraceModeScope Scope(TB, TraceMode::Slow);
}

TEST(TraceModeScope, SavesAndRestores) {
#if ATC_TRACE_ENABLED
  TraceBuffer TB;
  TB.init(16);
  TB.setModeAt(1, TraceMode::Check);
  {
    TraceModeScope Scope(&TB, TraceMode::Fast2);
    EXPECT_EQ(TB.mode(), TraceMode::Fast2);
  }
  EXPECT_EQ(TB.mode(), TraceMode::Check);
  // check -> fast_2 -> check: three mode events.
  EXPECT_EQ(TB.size(), 3u);
#endif
}

//===----------------------------------------------------------------------===//
// JSON parser
//===----------------------------------------------------------------------===//

TEST(Json, ParsesScalarsAndNesting) {
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(
      R"({"a": 1.5, "b": [true, null, "x\nA"], "c": {"d": -2}})", V,
      Err))
      << Err;
  EXPECT_EQ(V["a"].numberOr(0), 1.5);
  ASSERT_TRUE(V["b"].isArray());
  const json::Array &B = V["b"].asArray();
  ASSERT_EQ(B.size(), 3u);
  EXPECT_TRUE(B[0].isBool() && B[0].asBool());
  EXPECT_TRUE(B[1].isNull());
  EXPECT_EQ(B[2].stringOr(""), "x\nA");
  EXPECT_EQ(V["c"]["d"].numberOr(0), -2.0);
  // Missing keys chain gracefully.
  EXPECT_TRUE(V["nope"]["deeper"].isNull());
}

TEST(Json, RejectsMalformed) {
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::parse("{\"a\": }", V, Err));
  EXPECT_FALSE(json::parse("[1, 2", V, Err));
  EXPECT_FALSE(json::parse("", V, Err));
  EXPECT_FALSE(json::parse("{\"a\": 1} trailing", V, Err));
}

//===----------------------------------------------------------------------===//
// Exporter round-trip
//===----------------------------------------------------------------------===//

/// Builds a two-worker log by hand: worker 0 works fast then gets
/// stolen from; worker 1 idles, steals from 0, then works.
TraceLog makeHandLog() {
  TraceLog Log(2, 64);
  Log.Meta.Scheduler = "AdaptiveTC";
  Log.Meta.Source = "test";
  Log.Meta.Workload = "hand";
  TraceBuffer &W0 = Log.buffer(0);
  W0.setModeAt(0, TraceMode::Fast);
  W0.emitAt(100, TraceEventKind::SpawnReal, 0, 1);
  W0.setModeAt(500, TraceMode::Check);
  W0.emitAt(600, TraceEventKind::SpawnFake, 0, 3);
  TraceBuffer &W1 = Log.buffer(1);
  W1.setModeAt(0, TraceMode::Idle);
  W1.emitAt(50, TraceEventKind::StealAttempt, 0);
  W1.emitAt(300, TraceEventKind::StealSuccess, 0);
  W1.setModeAt(300, TraceMode::Slow);
  return Log;
}

TEST(TraceJson, ExportParsesAsValidJson) {
  TraceLog Log = makeHandLog();
  std::string Path = ::testing::TempDir() + "atc_trace_hand.json";
  ASSERT_TRUE(writeChromeTraceFile(Log, Path));
  ParsedTrace T;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());
  EXPECT_EQ(T.Scheduler, "AdaptiveTC");
  EXPECT_EQ(T.Source, "test");
  EXPECT_EQ(T.Workload, "hand");
  EXPECT_EQ(T.SchemaVersion, 1);
  EXPECT_EQ(T.Workers, 2);
  EXPECT_EQ(T.Dropped, 0u);
}

TEST(TraceJson, SchemaRoundTrip) {
  TraceLog Log = makeHandLog();
  std::string Path = ::testing::TempDir() + "atc_trace_rt.json";
  ASSERT_TRUE(writeChromeTraceFile(Log, Path));
  ParsedTrace T;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());

  // Worker 0: two mode slices (fast then check) with the instants on top.
  auto Slices0 = T.onWorker(0, 'X');
  ASSERT_EQ(Slices0.size(), 2u);
  EXPECT_EQ(Slices0[0]->Name, "fast");
  EXPECT_EQ(Slices0[1]->Name, "check");
  EXPECT_DOUBLE_EQ(Slices0[0]->TsUs, 0.0);
  EXPECT_DOUBLE_EQ(Slices0[0]->DurUs, 0.5); // 500 ns.
  auto Inst0 = T.onWorker(0, 'i');
  ASSERT_EQ(Inst0.size(), 2u);
  EXPECT_EQ(Inst0[0]->Name, "spawn-real");
  EXPECT_EQ(Inst0[0]->B, 1u);
  EXPECT_EQ(Inst0[1]->Name, "spawn-fake");
  EXPECT_EQ(Inst0[1]->B, 3u);

  // Worker 1: idle then slow; a steal-success instant carrying the
  // victim id, plus a flow arrow (s on victim track, f on thief track).
  auto Inst1 = T.onWorker(1, 'i');
  ASSERT_EQ(Inst1.size(), 2u);
  EXPECT_EQ(Inst1[1]->Name, "steal-success");
  EXPECT_EQ(Inst1[1]->A, 0u);
  EXPECT_EQ(T.onWorker(0, 's').size(), 1u);
  EXPECT_EQ(T.onWorker(1, 'f').size(), 1u);
}

TEST(TraceJson, EventOrderMonotonicPerWorker) {
  TraceLog Log = makeHandLog();
  std::string Path = ::testing::TempDir() + "atc_trace_mono.json";
  ASSERT_TRUE(writeChromeTraceFile(Log, Path));
  ParsedTrace T;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());
  // Within one worker each phase is time-ordered. (Mode slices are
  // written when the *next* mode begins, carrying their start time, so
  // only per-phase order is monotonic — see TraceRead.h.)
  for (int W = 0; W < T.Workers; ++W) {
    for (char Ph : {'X', 'i'}) {
      double Prev = -1;
      for (const ParsedEvent *E : T.onWorker(W, Ph)) {
        EXPECT_GE(E->TsUs, Prev) << "worker " << W << " phase " << Ph;
        Prev = E->TsUs;
      }
    }
  }
}

TEST(TraceJson, OverflowSkipsUnnamedSpanAndReportsDropped) {
  TraceLog Log(1, 8);
  TraceBuffer &W0 = Log.buffer(0);
  W0.setModeAt(0, TraceMode::Fast);
  for (std::uint64_t I = 1; I <= 20; ++I)
    W0.emitAt(I * 100, TraceEventKind::SpawnFake);
  // The ModeBegin fell out of the ring; the exporter must not fabricate
  // a mode slice it cannot name, and must report the drop count.
  std::string Path = ::testing::TempDir() + "atc_trace_ovf.json";
  ASSERT_TRUE(writeChromeTraceFile(Log, Path));
  ParsedTrace T;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());
  EXPECT_EQ(T.Dropped, 13u);
  EXPECT_TRUE(T.onWorker(0, 'X').empty());
  EXPECT_EQ(T.onWorker(0, 'i').size(), 8u);
}

//===----------------------------------------------------------------------===//
// End-to-end: real runtime
//===----------------------------------------------------------------------===//

TEST(TraceRuntime, AdaptiveTcRunProducesCoherentTrace) {
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(9);
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 4;
  Cfg.Trace = true;
  RunResult<long long> R = runProblem(Prob, Root, Cfg);
  EXPECT_EQ(R.Value, 352);
#if ATC_TRACE_ENABLED
  ASSERT_NE(R.Trace, nullptr);
  EXPECT_EQ(R.Trace->numWorkers(), 4);
  EXPECT_EQ(R.Trace->Meta.Scheduler, "AdaptiveTC");
  EXPECT_EQ(R.Trace->Meta.Source, "runtime");
  EXPECT_GT(R.Trace->totalRetained(), 0u);

  // Every worker's retained events are time-monotonic (single writer).
  for (int W = 0; W < R.Trace->numWorkers(); ++W) {
    const TraceBuffer &TB = R.Trace->buffer(W);
    for (std::size_t I = 1; I < TB.size(); ++I)
      ASSERT_LE(TB.at(I - 1).TimeNs, TB.at(I).TimeNs) << "worker " << W;
  }

  // Export, re-read, summarize: the busy time must be positive and the
  // steal successes in the summary must match the runtime's counter.
  std::string Path = ::testing::TempDir() + "atc_trace_e2e.json";
  ASSERT_TRUE(writeChromeTraceFile(*R.Trace, Path));
  ParsedTrace T;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());
  TraceSummary S = summarizeTrace(T);
  ASSERT_EQ(S.Workers.size(), 4u);
  double Busy = 0;
  std::uint64_t Steals = 0;
  for (const WorkerSummary &W : S.Workers) {
    Busy += W.BusyUs;
    Steals += W.Steals;
  }
  EXPECT_GT(Busy, 0.0);
  EXPECT_EQ(Steals, R.Stats.Steals);
  EXPECT_FALSE(formatSummary(S).empty());
#endif
}

TEST(TraceRuntime, DisabledByDefault) {
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(8);
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 2;
  RunResult<long long> R = runProblem(Prob, Root, Cfg);
  EXPECT_EQ(R.Value, 92);
  EXPECT_EQ(R.Trace, nullptr);
}

TEST(TraceRuntime, CompileTimeGate) {
#if !ATC_TRACE_ENABLED
  // Built with -DATC_TRACE=OFF: asking for a trace must yield none.
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(8);
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 2;
  Cfg.Trace = true;
  RunResult<long long> R = runProblem(Prob, Root, Cfg);
  EXPECT_EQ(R.Value, 92);
  EXPECT_EQ(R.Trace, nullptr);
#else
  GTEST_SKIP() << "tracing compiled in (ATC_TRACE=ON)";
#endif
}

TEST(TraceRuntime, TascellRunTracesDonations) {
  NQueensArray Prob;
  auto Root = NQueensArray::makeRoot(9);
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::Tascell;
  Cfg.NumWorkers = 4;
  Cfg.Trace = true;
  RunResult<long long> R = runProblem(Prob, Root, Cfg);
  EXPECT_EQ(R.Value, 352);
#if ATC_TRACE_ENABLED
  ASSERT_NE(R.Trace, nullptr);
  std::uint64_t Donations = 0;
  for (int W = 0; W < R.Trace->numWorkers(); ++W) {
    const TraceBuffer &TB = R.Trace->buffer(W);
    for (std::size_t I = 0; I < TB.size(); ++I)
      if (TB.at(I).kind() == TraceEventKind::Donation)
        ++Donations;
  }
  EXPECT_EQ(Donations, R.Stats.Steals);
#endif
}

//===----------------------------------------------------------------------===//
// End-to-end: simulator (virtual time)
//===----------------------------------------------------------------------===//

TEST(TraceSim, EmitsSameSchemaInVirtualTime) {
#if ATC_TRACE_ENABLED
  SimTree Tree(SimTree::preset("tree3r", 50'000));
  SimOptions Opts;
  Opts.Kind = SchedulerKind::AdaptiveTC;
  Opts.NumWorkers = 4;
  CostModel Costs;
  TraceLog Log(Opts.NumWorkers, 1u << 18);
  SimReport R = simulate(Tree, Opts, Costs, &Log);
  EXPECT_EQ(Log.Meta.Source, "sim");
  EXPECT_GT(Log.totalRetained(), 0u);

  std::uint64_t Steals = 0, Spawns = 0;
  for (int W = 0; W < Log.numWorkers(); ++W) {
    const TraceBuffer &TB = Log.buffer(W);
    std::uint64_t Prev = 0;
    for (std::size_t I = 0; I < TB.size(); ++I) {
      ASSERT_GE(TB.at(I).TimeNs, Prev) << "worker " << W;
      Prev = TB.at(I).TimeNs;
      if (TB.at(I).kind() == TraceEventKind::StealSuccess)
        ++Steals;
      if (TB.at(I).kind() == TraceEventKind::SpawnReal)
        ++Spawns;
    }
  }
  EXPECT_EQ(Steals, R.Steals);
  EXPECT_EQ(Spawns, R.TasksCreated);

  // The export/summarize pipeline is producer-agnostic.
  std::string Path = ::testing::TempDir() + "atc_trace_sim.json";
  ASSERT_TRUE(writeChromeTraceFile(Log, Path));
  ParsedTrace T;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());
  EXPECT_EQ(T.Source, "sim");
  TraceSummary S = summarizeTrace(T);
  EXPECT_EQ(S.Workers.size(), 4u);
#else
  GTEST_SKIP() << "tracing compiled out (ATC_TRACE=OFF)";
#endif
}

TEST(TraceSim, Deterministic) {
#if ATC_TRACE_ENABLED
  SimTree Tree(SimTree::preset("tree1l", 20'000));
  SimOptions Opts;
  Opts.Kind = SchedulerKind::Tascell;
  Opts.NumWorkers = 3;
  CostModel Costs;
  TraceLog A(3, 1u << 16), B(3, 1u << 16);
  simulate(Tree, Opts, Costs, &A);
  simulate(Tree, Opts, Costs, &B);
  for (int W = 0; W < 3; ++W) {
    const TraceBuffer &TA = A.buffer(W), &TB = B.buffer(W);
    ASSERT_EQ(TA.size(), TB.size()) << "worker " << W;
    for (std::size_t I = 0; I < TA.size(); ++I) {
      EXPECT_EQ(TA.at(I).TimeNs, TB.at(I).TimeNs);
      EXPECT_EQ(TA.at(I).Kind, TB.at(I).Kind);
      EXPECT_EQ(TA.at(I).A, TB.at(I).A);
      EXPECT_EQ(TA.at(I).B, TB.at(I).B);
    }
  }
#else
  GTEST_SKIP() << "tracing compiled out (ATC_TRACE=OFF)";
#endif
}

//===----------------------------------------------------------------------===//
// Summary math
//===----------------------------------------------------------------------===//

TEST(TraceSummary, ComputesLatenciesFromHandTrace) {
  TraceLog Log(2, 64);
  TraceBuffer &W1 = Log.buffer(1);
  W1.setModeAt(0, TraceMode::Idle);
  W1.emitAt(1'000, TraceEventKind::StealAttempt, 0);
  W1.emitAt(2'000, TraceEventKind::StealFail, 0);
  W1.emitAt(5'000, TraceEventKind::StealSuccess, 0);
  W1.setModeAt(5'000, TraceMode::Slow);
  TraceBuffer &W0 = Log.buffer(0);
  W0.setModeAt(0, TraceMode::Check);
  W0.emitAt(10'000, TraceEventKind::NeedTaskObserve, 0, 2);
  W0.emitAt(12'500, TraceEventKind::SpecialPush, 0, 2);

  std::string Path = ::testing::TempDir() + "atc_trace_lat.json";
  ASSERT_TRUE(writeChromeTraceFile(Log, Path));
  ParsedTrace T;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, T, Err)) << Err;
  std::remove(Path.c_str());

  TraceSummary S = summarizeTrace(T);
  // Steal latency: attempt at 1 us -> success at 5 us = 4 us.
  ASSERT_EQ(S.StealLatenciesUs.size(), 1u);
  EXPECT_DOUBLE_EQ(S.StealLatenciesUs[0], 4.0);
  // Reseed latency: observe at 10 us -> push at 12.5 us = 2.5 us.
  ASSERT_EQ(S.ReseedLatenciesUs.size(), 1u);
  EXPECT_DOUBLE_EQ(S.ReseedLatenciesUs[0], 2.5);
  EXPECT_EQ(S.Workers[0].SpecialPushes, 1u);
  EXPECT_EQ(S.Workers[1].Steals, 1u);
  EXPECT_EQ(S.Workers[1].FailedSteals, 1u);
}

} // namespace
} // namespace atc
