//===- tests/TuningTest.cpp - Online tuning controller tests --------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The controller's rule layer is exercised synthetically (applyWindow
// takes pre-extracted window deltas, so every rule and the hysteresis
// band is deterministic here), then end-to-end on the simulator's
// virtual clocks, and finally through the real runtime's gate.
//
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "core/tuning/TuningController.h"
#include "metrics/MetricsRegistry.h"
#include "problems/NQueens.h"
#include "sim/CostModel.h"
#include "sim/SimEngine.h"

#include <gtest/gtest.h>

using namespace atc;

namespace {

// Steal-ratio windows are reseed-NEUTRAL (one reseed, expensive mean):
// neither the reseed-hot deepen rule nor the quiet-spell decay may fire,
// so the tests isolate the steal-success band they target.
TuneWindow successWindow(std::uint64_t Steals = 30,
                         std::uint64_t Fails = 2) {
  TuneWindow W;
  W.Steals = Steals;
  W.StealFails = Fails;
  W.Reseeds = 1;
  W.ReseedMeanNs = 1.0e9;
  return W;
}

TuneWindow failureWindow(std::uint64_t Steals = 2,
                         std::uint64_t Fails = 30) {
  TuneWindow W;
  W.Steals = Steals;
  W.StealFails = Fails;
  W.Reseeds = 1;
  W.ReseedMeanNs = 1.0e9;
  return W;
}

TuneWindow reseedWindow(std::uint64_t Count, double MeanNs) {
  TuneWindow W;
  W.Reseeds = Count;
  W.ReseedMeanNs = MeanNs;
  return W;
}

//===----------------------------------------------------------------------===//
// Rule layer (synthetic windows)
//===----------------------------------------------------------------------===//

TEST(TuningRules, ArmSeedsKnobsFromRunConfig) {
  TuningController T;
  T.arm(/*InitCutoff=*/3, /*InitMaxStolen=*/20);
  EXPECT_EQ(T.cutoff(), 3);
  EXPECT_EQ(T.maxStolenNum(), 20);
  EXPECT_EQ(T.backoffShift(), DefaultBackoffShift);
  EXPECT_EQ(T.adjustments(), 0u);
  EXPECT_EQ(T.windowsEvaluated(), 0u);
}

TEST(TuningRules, ArmClampsOutOfRangeInitials) {
  TuningLimits L;
  TuningController T;
  T.arm(/*InitCutoff=*/0, /*InitMaxStolen=*/100000, L);
  EXPECT_GE(T.cutoff(), 1) << "cut-off floor is 1";
  EXPECT_EQ(T.maxStolenNum(), L.MaxMaxStolen);
}

TEST(TuningRules, StealSuccessRaisesMaxStolenAndNarrowsBackoff) {
  TuningLimits L;
  TuningController T;
  T.arm(3, 20, L);
  T.applyWindow(successWindow());
  EXPECT_EQ(T.maxStolenNum(), 20 + L.MaxStolenStep);
  EXPECT_EQ(T.backoffShift(), DefaultBackoffShift - 1);
  EXPECT_EQ(T.adjustments(), 2u);

  // Same-direction steps stay free: keep feeding success and the knob
  // walks to its ceiling (and the backoff to its floor), then stops.
  for (int I = 0; I < 64; ++I)
    T.applyWindow(successWindow());
  EXPECT_EQ(T.maxStolenNum(), L.MaxMaxStolen);
  EXPECT_EQ(T.backoffShift(), L.MinBackoffShift);
}

TEST(TuningRules, StealFailureLowersMaxStolenAndWidensBackoff) {
  TuningLimits L;
  TuningController T;
  T.arm(3, 20, L);
  T.applyWindow(failureWindow());
  EXPECT_EQ(T.maxStolenNum(), 20 - L.MaxStolenStep);
  EXPECT_EQ(T.backoffShift(), DefaultBackoffShift + 1);

  for (int I = 0; I < 64; ++I)
    T.applyWindow(failureWindow());
  EXPECT_EQ(T.maxStolenNum(), L.MinMaxStolen);
  EXPECT_EQ(T.backoffShift(), L.MaxBackoffShift);
}

TEST(TuningRules, SparseWindowsAreNoise) {
  // Below MinStealAttempts the success ratio must not move anything.
  TuningController T;
  T.arm(3, 20);
  T.applyWindow(successWindow(/*Steals=*/5, /*Fails=*/0));
  T.applyWindow(failureWindow(/*Steals=*/0, /*Fails=*/5));
  EXPECT_EQ(T.maxStolenNum(), 20);
  EXPECT_EQ(T.backoffShift(), DefaultBackoffShift);
  EXPECT_EQ(T.adjustments(), 0u);
}

TEST(TuningRules, MidRatioDeadBandHoldsKnobsStill) {
  TuningController T;
  T.arm(3, 20);
  for (int I = 0; I < 32; ++I) {
    TuneWindow W = successWindow(/*Steals=*/16, /*Fails=*/16); // 0.5
    W.Reseeds = 1; // non-quiet, non-hot: cut-off rule idle too
    W.ReseedMeanNs = 1.0e9;
    T.applyWindow(W);
  }
  EXPECT_EQ(T.maxStolenNum(), 20);
  EXPECT_EQ(T.backoffShift(), DefaultBackoffShift);
  EXPECT_EQ(T.adjustments(), 0u);
}

TEST(TuningRules, CheapFrequentReseedsDeepenCutoff) {
  TuningLimits L;
  TuningController T;
  T.arm(3, 20, L);
  T.applyWindow(reseedWindow(L.ReseedHotCount, 1.0e6));
  EXPECT_EQ(T.cutoff(), 4);
  for (int I = 0; I < 64; ++I)
    T.applyWindow(reseedWindow(L.ReseedHotCount, 1.0e6));
  EXPECT_EQ(T.cutoff(), 3 + L.MaxCutoffRaise) << "raise is bounded";
}

TEST(TuningRules, ExpensiveOrRareReseedsDoNotDeepen) {
  TuningLimits L;
  TuningController T;
  T.arm(3, 20, L);
  // Too expensive: interval mean above the cheap bound.
  T.applyWindow(reseedWindow(L.ReseedHotCount,
                             static_cast<double>(L.ReseedCheapNs) * 4));
  // Too rare: below the hot count.
  T.applyWindow(reseedWindow(L.ReseedHotCount - 1, 1.0e6));
  EXPECT_EQ(T.cutoff(), 3);
}

TEST(TuningRules, QuietSpellDecaysCutoffTowardInitial) {
  TuningLimits L;
  TuningController T;
  T.arm(3, 20, L);
  // Deepen twice, then go reseed-quiet: one decay step per
  // ReseedQuietWindows consecutive empty windows.
  T.applyWindow(reseedWindow(L.ReseedHotCount, 1.0e6));
  // The reversal hold refuses the decay until HoldWindows have passed,
  // so spend them on non-quiet filler first (reseeds present but not
  // hot — resets the quiet counter, moves nothing).
  for (int I = 0; I < L.HoldWindows; ++I)
    T.applyWindow(reseedWindow(1, static_cast<double>(L.ReseedCheapNs) * 4));
  for (int I = 0; I < L.ReseedQuietWindows; ++I)
    T.applyWindow(TuneWindow());
  EXPECT_EQ(T.cutoff(), 3);
  // Decay never undershoots the floor of max(1, Init - 1).
  for (int I = 0; I < 10 * L.ReseedQuietWindows; ++I)
    T.applyWindow(TuneWindow());
  EXPECT_EQ(T.cutoff(), 2);
}

TEST(TuningRules, ReversalHysteresisPreventsOscillation) {
  TuningLimits L;
  TuningController T;
  T.arm(3, 20, L);

  // A boundary-straddling signal alternates high/low every window. With
  // reversal hysteresis the knob must not flap: after the first move,
  // each direction change is refused until HoldWindows pass.
  T.applyWindow(successWindow()); // 20 -> 24, dir = +1
  const int AfterFirst = T.maxStolenNum();
  EXPECT_EQ(AfterFirst, 20 + L.MaxStolenStep);
  std::uint64_t Moves = T.adjustments();

  for (int I = 0; I < L.HoldWindows - 1; ++I) {
    T.applyWindow(failureWindow()); // reversal: refused within the hold
    EXPECT_EQ(T.maxStolenNum(), AfterFirst) << "window " << I;
  }
  EXPECT_EQ(T.adjustments(), Moves) << "no knob moved during the hold";

  // Hold expired: the reversal is allowed through.
  T.applyWindow(failureWindow());
  EXPECT_EQ(T.maxStolenNum(), AfterFirst - L.MaxStolenStep);
}

TEST(TuningRules, GatedAccessorsDefaultWhenUntuned) {
  // Null controller (or a build with ATC_TUNING=OFF): the live accessors
  // fold to the configured defaults.
  EXPECT_EQ(liveCutoff(nullptr, 5), 5);
  EXPECT_EQ(liveMaxStolen(nullptr, 20), 20);
  EXPECT_EQ(liveBackoffShift(nullptr), DefaultBackoffShift);
}

//===----------------------------------------------------------------------===//
// Simulator mirror (virtual clocks -> deterministic end-to-end)
//===----------------------------------------------------------------------===//

TEST(TuningSim, TunedRunIsDeterministicAndLosesNoNodes) {
  SimTree Tree(SimTree::preset("tree3l", 400000));
  CostModel Costs;
  SimOptions Opts;
  Opts.Kind = SchedulerKind::AdaptiveTC;
  Opts.NumWorkers = 8;
  Opts.Tuning = true;

  SimReport A = simulate(Tree, Opts, Costs);
  SimReport B = simulate(Tree, Opts, Costs);
  EXPECT_EQ(A.NodesProcessed, Tree.spec().TotalNodes);
  EXPECT_EQ(A.MakespanNs, B.MakespanNs);
  EXPECT_EQ(A.TuneAdjustments, B.TuneAdjustments);
  EXPECT_EQ(A.FinalCutoff, B.FinalCutoff);
  EXPECT_EQ(A.FinalMaxStolen, B.FinalMaxStolen);
#if ATC_TUNING_ENABLED && ATC_METRICS_ENABLED
  EXPECT_GT(A.TuneWindows, 0u) << "controllers never evaluated a window";
  EXPECT_GE(A.FinalCutoff, 1);
#else
  EXPECT_EQ(A.TuneWindows, 0u) << "compiled-out tuning must be inert";
#endif
}

TEST(TuningSim, UntunedRunIsUnchangedByTheTuningCode) {
  // The knob plumbing (live reads at dispatch / steal / backoff sites)
  // must be behaviour-identical when no controller is armed: the
  // committed fig8/fig10 records were produced before the tuning layer
  // existed, and an untuned sim must still reproduce them bit-for-bit.
  SimTree Tree(SimTree::preset("input1", 200000));
  CostModel Costs;
  SimOptions Opts;
  Opts.Kind = SchedulerKind::AdaptiveTC;
  Opts.NumWorkers = 8;

  SimReport Off = simulate(Tree, Opts, Costs);
  EXPECT_EQ(Off.TuneAdjustments, 0u);
  EXPECT_EQ(Off.TuneWindows, 0u);
  EXPECT_EQ(Off.FinalCutoff, 0) << "no controller, no final knobs";
  EXPECT_EQ(Off.NodesProcessed, Tree.spec().TotalNodes);
}

TEST(TuningSim, TunedRegistryCarriesTuneGauges) {
#if ATC_TUNING_ENABLED && ATC_METRICS_ENABLED
  SimTree Tree(SimTree::preset("tree3l", 200000));
  CostModel Costs;
  SimOptions Opts;
  Opts.Kind = SchedulerKind::AdaptiveTC;
  Opts.NumWorkers = 4;
  Opts.Tuning = true;

  MetricsRegistry Reg;
  SimReport R = simulate(Tree, Opts, Costs, /*Log=*/nullptr, &Reg);
  ASSERT_EQ(Reg.numWorkers(), 4);
  MetricsSnapshot Snap = Reg.sample();
  std::uint64_t Windows = 0;
  for (int I = 0; I < 4; ++I) {
    const WorkerSample &S = Snap.Workers[static_cast<std::size_t>(I)];
    EXPECT_GE(S.TuneCutoff, 1u) << "worker " << I
                                << ": armed knob gauge missing";
    EXPECT_GE(S.TuneMaxStolen, 1u) << "worker " << I;
    Windows += S.TuneWindows;
  }
  EXPECT_EQ(Windows, R.TuneWindows)
      << "registry gauges disagree with the report";
#else
  GTEST_SKIP() << "tuning or metrics compiled out";
#endif
}

//===----------------------------------------------------------------------===//
// Real runtime gate
//===----------------------------------------------------------------------===//

TEST(TuningRuntime, TunedRunIsCorrectAndPublishesGauges) {
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 4;
  Cfg.Tuning = true; // implies metrics

  auto R = runProblem(Prob, NQueensArray::makeRoot(10), Cfg);
  EXPECT_EQ(R.Value, 724);
#if ATC_TUNING_ENABLED && ATC_METRICS_ENABLED
  ASSERT_NE(R.Metrics, nullptr) << "tuning must arm the metrics registry";
  MetricsSnapshot Snap = R.Metrics->sample();
  for (int I = 0; I < Cfg.NumWorkers; ++I) {
    const WorkerSample &S = Snap.Workers[static_cast<std::size_t>(I)];
    EXPECT_GE(S.TuneCutoff, 1u)
        << "worker " << I << ": controller never published its knobs";
  }
#endif
}

TEST(TuningRuntime, UntunedRunPublishesZeroGauges) {
  NQueensArray Prob;
  SchedulerConfig Cfg;
  Cfg.Kind = SchedulerKind::AdaptiveTC;
  Cfg.NumWorkers = 2;
  Cfg.Metrics = true; // metrics without tuning

  auto R = runProblem(Prob, NQueensArray::makeRoot(9), Cfg);
  EXPECT_EQ(R.Value, 352);
#if ATC_METRICS_ENABLED
  ASSERT_NE(R.Metrics, nullptr);
  MetricsSnapshot Snap = R.Metrics->sample();
  for (int I = 0; I < Cfg.NumWorkers; ++I) {
    const WorkerSample &S = Snap.Workers[static_cast<std::size_t>(I)];
    EXPECT_EQ(S.TuneCutoff, 0u) << "untuned cells must read all-zero";
    EXPECT_EQ(S.TuneAdjustments, 0u);
  }
#endif
}

} // namespace
