//===- tools/atc_loadgen.cpp - Open-loop load generator -------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop load generator for atc_server: submits jobs on a fixed
/// schedule (arrival rate independent of completions — the open-loop
/// discipline that actually exposes queueing delay), collects every
/// result, checks values against the sequential oracle, and reports
/// p50/p99 end-to-end latency, throughput, and shed rate.
///
///   atc_server --threads=4 --port=9900 &
///   atc_loadgen --port=9900 --jobs=200 --rate=100
///     with --mix='nqueens-array:10=3,fib:25=3,strimko:5=2'
///
/// Every accepted job is driven to a terminal state — a submission that
/// never resolves is reported as lost (exit 1), so "zero lost jobs" is
/// machine-checkable in CI.
///
//===----------------------------------------------------------------------===//

#include "metrics/Metrics.h"
#include "problems/ProblemRegistry.h"
#include "server/Job.h"
#include "support/LoopbackHttp.h"
#include "support/Options.h"
#include "support/Prng.h"
#include "trace/Json.h"

#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace atc;

namespace {

struct MixEntry {
  std::string Kind;
  int Size = 0;
  int Weight = 1;
};

/// Parses "kind:size=weight,kind:size=weight,...". Weight defaults to 1,
/// size to the kind's registry default.
bool parseMix(const std::string &Text, std::vector<MixEntry> &Out,
              std::string &Error) {
  std::size_t Pos = 0;
  while (Pos < Text.size()) {
    std::size_t End = Text.find(',', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Item = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Item.empty())
      continue;
    MixEntry E;
    std::size_t Eq = Item.find('=');
    if (Eq != std::string::npos) {
      E.Weight = std::atoi(Item.c_str() + Eq + 1);
      Item = Item.substr(0, Eq);
    }
    std::size_t Colon = Item.find(':');
    if (Colon != std::string::npos) {
      E.Size = std::atoi(Item.c_str() + Colon + 1);
      Item = Item.substr(0, Colon);
    }
    E.Kind = Item;
    if (E.Weight < 1) {
      Error = "mix weight must be >= 1 in '" + Text + "'";
      return false;
    }
    ProblemRunner Probe;
    if (!makeProblemRunner(E.Kind, E.Size, Probe, Error))
      return false;
    E.Kind = Probe.Kind;
    E.Size = Probe.Size;
    Out.push_back(E);
  }
  if (Out.empty()) {
    Error = "empty job mix";
    return false;
  }
  return true;
}

struct Collected {
  std::mutex Lock;
  std::uint64_t Completed = 0;
  std::uint64_t Failed = 0;
  std::uint64_t Expired = 0;
  std::uint64_t Lost = 0;
  std::uint64_t ValueMismatches = 0;
  HistogramCounts LatencyNs;
  HistogramCounts QueueNs;
};

/// One collector: long-polls /result/<id> until the job is terminal.
void collectOne(int Port, std::uint64_t Id,
                const std::map<std::string, long long> &Oracle,
                Collected &C) {
  for (int Attempt = 0; Attempt < 60; ++Attempt) {
    int Status = 0;
    std::string Body;
    char Path[64];
    std::snprintf(Path, sizeof(Path), "/result/%llu?wait=10000",
                  static_cast<unsigned long long>(Id));
    if (!httpRequest(Port, "GET", Path, "", Status, Body)) {
      ::usleep(10 * 1000);
      continue;
    }
    json::Value Doc;
    std::string Err;
    if (Status != 200 || !json::parse(Body, Doc, Err))
      continue;
    std::string State = Doc["state"].stringOr("");
    if (State == "queued" || State == "running" || State.empty())
      continue;
    std::lock_guard<std::mutex> Guard(C.Lock);
    if (State == "done") {
      ++C.Completed;
      C.LatencyNs.record(
          static_cast<std::uint64_t>(Doc["latency_ns"].numberOr(0)));
      C.QueueNs.record(
          static_cast<std::uint64_t>(Doc["queue_ns"].numberOr(0)));
      const json::Value &Spec = Doc["spec"];
      std::string Key = Spec["problem"].stringOr("") + ":" +
                        std::to_string(static_cast<long long>(
                            Spec["size"].numberOr(0)));
      auto It = Oracle.find(Key);
      if (It != Oracle.end() &&
          static_cast<long long>(Doc["value"].numberOr(0)) != It->second)
        ++C.ValueMismatches;
    } else if (State == "expired") {
      ++C.Expired;
    } else {
      ++C.Failed;
    }
    return;
  }
  std::lock_guard<std::mutex> Guard(C.Lock);
  ++C.Lost;
}

} // namespace

int main(int argc, char **argv) {
  long long Port = 9900;
  long long Jobs = 200;
  double Rate = 100.0;
  long long Tenants = 4;
  long long Workers = 0;
  long long DeadlineMs = 0;
  long long Collectors = 8;
  std::string Mix = "nqueens-array:10=3,fib:25=3,strimko:5=2,knights:5=1";
  std::string Scheduler = "adaptivetc";
  std::string Deque = "chaselev";
  std::string JsonPath;
  long long Seed = 0x10adULL;
  OptionSet Opts("Open-loop load generator for atc_server");
  Opts.addInt("port", &Port, "server port (default 9900)");
  Opts.addInt("jobs", &Jobs, "total jobs to submit (default 200)");
  Opts.addDouble("rate", &Rate,
                 "arrival rate in jobs/second, open loop (default 100)");
  Opts.addString("mix", &Mix,
                 "weighted job mix 'kind:size=weight,...' (sizes 0 = "
                 "registry default)");
  Opts.addInt("tenants", &Tenants,
              "spread jobs across this many tenants (default 4)");
  Opts.addInt("workers", &Workers,
              "workers per job; 0 = server pool width (default 0)");
  Opts.addInt("deadline-ms", &DeadlineMs,
              "per-job queue deadline; 0 = none (default 0)");
  Opts.addInt("collectors", &Collectors,
              "result-collector threads (default 8)");
  Opts.addString("scheduler", &Scheduler,
                 "scheduler kind for every job (default adaptivetc)");
  Opts.addString("deque", &Deque, "deque kind (default chaselev)");
  Opts.addString("json", &JsonPath,
                 "write the machine-readable report here (the "
                 "BENCH_server.json family)");
  Opts.addInt("seed", &Seed, "mix-sampling seed");
  Opts.parse(argc, argv);

  std::vector<MixEntry> Entries;
  std::string Err;
  if (!parseMix(Mix, Entries, Err)) {
    std::fprintf(stderr, "atc_loadgen: %s\n", Err.c_str());
    return 2;
  }
  SchedulerKind Kind;
  DequeKind DQ;
  if (!parseSchedulerKind(Scheduler, Kind) || !parseDequeKind(Deque, DQ)) {
    std::fprintf(stderr, "atc_loadgen: bad --scheduler/--deque\n");
    return 2;
  }

  // Sequential oracle per mix entry, computed locally once — every
  // completed job's value is checked against it.
  std::map<std::string, long long> Oracle;
  for (const MixEntry &E : Entries) {
    std::string Key = E.Kind + ":" + std::to_string(E.Size);
    if (Oracle.count(Key))
      continue;
    ProblemRunner R;
    if (!makeProblemRunner(E.Kind, E.Size, R, Err)) {
      std::fprintf(stderr, "atc_loadgen: %s\n", Err.c_str());
      return 2;
    }
    Oracle[Key] = R.RunSequential();
  }

  int TotalWeight = 0;
  for (const MixEntry &E : Entries)
    TotalWeight += E.Weight;
  SplitMix64 Rng(static_cast<std::uint64_t>(Seed));

  // Collector pool over a shared id queue.
  Collected C;
  std::mutex IdLock;
  std::deque<std::uint64_t> IdQueue;
  bool SubmitDone = false;
  std::vector<std::thread> Pool;
  for (long long I = 0; I < Collectors; ++I)
    Pool.emplace_back([&] {
      for (;;) {
        std::uint64_t Id = 0;
        {
          std::lock_guard<std::mutex> Guard(IdLock);
          if (!IdQueue.empty()) {
            Id = IdQueue.front();
            IdQueue.pop_front();
          } else if (SubmitDone) {
            return;
          }
        }
        if (Id == 0) {
          ::usleep(2 * 1000);
          continue;
        }
        collectOne(static_cast<int>(Port), Id, Oracle, C);
      }
    });

  // Open-loop submission: job i is due at Start + i/Rate regardless of
  // how the server is keeping up.
  std::uint64_t StartNs = nowNanos();
  std::uint64_t Accepted = 0, ShedCount = 0, SubmitErrors = 0;
  for (long long I = 0; I < Jobs; ++I) {
    std::uint64_t DueNs =
        StartNs + static_cast<std::uint64_t>(1e9 * I / Rate);
    std::uint64_t Now = nowNanos();
    if (DueNs > Now)
      ::usleep(static_cast<useconds_t>((DueNs - Now) / 1000));

    const MixEntry *Pick = &Entries[0];
    int Roll = static_cast<int>(
        Rng.nextBelow(static_cast<std::uint64_t>(TotalWeight)));
    for (const MixEntry &E : Entries) {
      if (Roll < E.Weight) {
        Pick = &E;
        break;
      }
      Roll -= E.Weight;
    }

    JobSpec Spec;
    Spec.Problem = Pick->Kind;
    Spec.Size = Pick->Size;
    // snprintf rather than string concatenation: the concat forms trip
    // a GCC 12 -Werror=restrict false positive (PR 105651) at -O2.
    char TenantBuf[32];
    std::snprintf(TenantBuf, sizeof(TenantBuf), "t%lld",
                  static_cast<long long>(I % Tenants));
    Spec.Tenant = TenantBuf;
    Spec.Kind = Kind;
    Spec.Deque = DQ;
    Spec.Workers = static_cast<int>(Workers);
    Spec.DeadlineMs = DeadlineMs;

    int Status = 0;
    std::string Body;
    if (!httpRequest(static_cast<int>(Port), "POST", "/job",
                     jobSpecJson(Spec), Status, Body)) {
      ++SubmitErrors;
      continue;
    }
    if (Status == 429) {
      ++ShedCount;
      continue;
    }
    if (Status != 200) {
      ++SubmitErrors;
      continue;
    }
    json::Value Doc;
    std::uint64_t Id =
        json::parse(Body, Doc, Err)
            ? static_cast<std::uint64_t>(Doc["id"].numberOr(0))
            : 0;
    if (Id == 0) {
      ++SubmitErrors;
      continue;
    }
    ++Accepted;
    std::lock_guard<std::mutex> Guard(IdLock);
    IdQueue.push_back(Id);
  }
  {
    std::lock_guard<std::mutex> Guard(IdLock);
    SubmitDone = true;
  }
  for (std::thread &T : Pool)
    T.join();
  double WallS = static_cast<double>(nowNanos() - StartNs) / 1e9;

  double P50 = C.LatencyNs.quantile(0.50);
  double P90 = C.LatencyNs.quantile(0.90);
  double P99 = C.LatencyNs.quantile(0.99);
  double Throughput = WallS > 0 ? C.Completed / WallS : 0;
  double ShedRate =
      Jobs > 0 ? static_cast<double>(ShedCount) / static_cast<double>(Jobs)
               : 0;

  std::printf("atc_loadgen: %lld jobs at %.0f/s over %.2f s\n", Jobs, Rate,
              WallS);
  std::printf("  accepted %llu, shed %llu (%.1f%%), submit errors %llu\n",
              static_cast<unsigned long long>(Accepted),
              static_cast<unsigned long long>(ShedCount), ShedRate * 100.0,
              static_cast<unsigned long long>(SubmitErrors));
  std::printf("  completed %llu, failed %llu, expired %llu, lost %llu, "
              "value mismatches %llu\n",
              static_cast<unsigned long long>(C.Completed),
              static_cast<unsigned long long>(C.Failed),
              static_cast<unsigned long long>(C.Expired),
              static_cast<unsigned long long>(C.Lost),
              static_cast<unsigned long long>(C.ValueMismatches));
  std::printf("  latency p50 %.2f ms, p90 %.2f ms, p99 %.2f ms; queue p50 "
              "%.2f ms\n",
              P50 / 1e6, P90 / 1e6, P99 / 1e6,
              C.QueueNs.quantile(0.50) / 1e6);
  std::printf("  throughput %.1f jobs/s\n", Throughput);

  if (!JsonPath.empty()) {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "atc_loadgen: cannot write '%s'\n",
                   JsonPath.c_str());
      return 2;
    }
    std::fprintf(
        F,
        "{\n  \"jobs\": %lld,\n  \"rate\": %.1f,\n  \"mix\": \"%s\",\n"
        "  \"wall_s\": %.3f,\n  \"accepted\": %llu,\n  \"shed\": %llu,\n"
        "  \"submit_errors\": %llu,\n  \"completed\": %llu,\n"
        "  \"failed\": %llu,\n  \"expired\": %llu,\n  \"lost\": %llu,\n"
        "  \"value_mismatches\": %llu,\n  \"shed_rate\": %.4f,\n"
        "  \"throughput_jobs_s\": %.2f,\n"
        "  \"latency_ns\": {\"p50\": %.1f, \"p90\": %.1f, \"p99\": %.1f},\n"
        "  \"queue_ns\": {\"p50\": %.1f, \"p99\": %.1f}\n}\n",
        Jobs, Rate, Mix.c_str(), WallS,
        static_cast<unsigned long long>(Accepted),
        static_cast<unsigned long long>(ShedCount),
        static_cast<unsigned long long>(SubmitErrors),
        static_cast<unsigned long long>(C.Completed),
        static_cast<unsigned long long>(C.Failed),
        static_cast<unsigned long long>(C.Expired),
        static_cast<unsigned long long>(C.Lost),
        static_cast<unsigned long long>(C.ValueMismatches), ShedRate,
        Throughput, P50, P90, P99, C.QueueNs.quantile(0.50),
        C.QueueNs.quantile(0.99));
    std::fclose(F);
  }

  bool Ok = C.Lost == 0 && C.Failed == 0 && C.ValueMismatches == 0 &&
            SubmitErrors == 0 &&
            C.Completed + C.Expired + ShedCount ==
                static_cast<std::uint64_t>(Jobs);
  return Ok ? 0 : 1;
}
