//===- tools/atc_server.cpp - Scheduler-as-a-service daemon ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduler service daemon: one persistent worker pool, a fair job
/// queue with admission control, and the loopback HTTP API from
/// server/Server.h. See docs/SERVING.md for the walkthrough.
///
///   atc_server --threads=4 --port=9900
///   curl -d '{"problem": "nqueens-array"}' http://127.0.0.1:9900/job
///   curl 'http://127.0.0.1:9900/result/1?wait=5000'
///
/// Runs until SIGINT/SIGTERM or a POST /shutdown, then drains the queue
/// and exits.
///
//===----------------------------------------------------------------------===//

#include "server/Server.h"
#include "support/Options.h"

#include <atomic>
#include <csignal>
#include <cstdio>

#include <unistd.h>

using namespace atc;

namespace {

std::atomic<bool> SignalStop{false};

void onSignal(int) { SignalStop.store(true, std::memory_order_release); }

} // namespace

int main(int argc, char **argv) {
  long long Threads = 4;
  long long Port = 9900;
  long long HttpThreads = 8;
  long long MaxQueued = 256;
  long long SoftWatermark = 64;
  long long DepthWatermark = 0;
  OptionSet Opts("Scheduler-as-a-service daemon (see docs/SERVING.md)");
  Opts.addInt("threads", &Threads,
              "persistent worker-pool width (default 4)");
  Opts.addInt("port", &Port,
              "loopback HTTP port; 0 picks an ephemeral one (default 9900)");
  Opts.addInt("http-threads", &HttpThreads,
              "HTTP serving threads (default 8)");
  Opts.addInt("max-queued", &MaxQueued,
              "hard admission cap: jobs queued beyond this are shed "
              "(default 256)");
  Opts.addInt("queue-watermark", &SoftWatermark,
              "soft queue watermark where the deque-depth backpressure "
              "check starts applying (default 64)");
  Opts.addInt("depth-watermark", &DepthWatermark,
              "live deque-depth watermark for backpressure shedding; "
              "0 disables (default 0)");
  Opts.parse(argc, argv);

  JobServerOptions O;
  O.PoolThreads = static_cast<int>(Threads);
  O.HttpPort = static_cast<int>(Port);
  O.HttpThreads = static_cast<int>(HttpThreads);
  O.MaxQueuedJobs = static_cast<std::size_t>(MaxQueued);
  O.QueueSoftWatermark = static_cast<std::size_t>(SoftWatermark);
  O.DequeDepthWatermark = DepthWatermark;

  JobServer Server(O);
  if (!Server.start()) {
    std::fprintf(stderr, "atc_server: cannot bind 127.0.0.1:%lld\n", Port);
    return 1;
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  std::printf("atc_server: pool=%d threads, http=127.0.0.1:%d, "
              "max-queued=%lld\n",
              Server.pool().size(), Server.httpPort(), MaxQueued);
  std::fflush(stdout);

  while (!SignalStop.load(std::memory_order_acquire) &&
         !Server.shutdownRequested())
    ::usleep(50 * 1000);

  std::printf("atc_server: draining...\n");
  Server.stop();
  JobServer::Totals T = Server.totals();
  std::printf("atc_server: done — %llu submitted, %llu completed, "
              "%llu shed, %llu expired, %llu failed\n",
              static_cast<unsigned long long>(T.Submitted),
              static_cast<unsigned long long>(T.Completed),
              static_cast<unsigned long long>(T.Shed),
              static_cast<unsigned long long>(T.Expired),
              static_cast<unsigned long long>(T.Failed));
  return 0;
}
