//===- tools/atc_top.cpp - live scheduler metrics dashboard ---------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A top(1)-style terminal dashboard over the live-metrics registry
/// (docs/METRICS.md): one row per worker with its current FSM mode,
/// deque depth, need_task flag, steal/spawn rates, histogram medians,
/// and a mode-residency sparkline, refreshed every --period-ms.
///
/// Three data sources:
///
///  * File tailing (the usual pairing with --metrics-file): point it at
///    the Prometheus snapshot any metrics-aware CLI rewrites periodically.
///
///      ./build/examples/nqueens --workers 4 --metrics-file m.prom &
///      ./build/tools/atc_top m.prom
///
///  * HTTP scraping: point it at a /metrics endpoint — a MetricsSampler
///    --metrics-port, or atc_server, whose exposition additionally
///    carries the job-layer series rendered as a jobs strip
///    (queued/running/completed/shed plus p50/p99 job latency).
///
///      ./build/tools/atc_top http://127.0.0.1:9900/metrics
///
///  * --demo: runs a registry problem in-process in a loop with an armed
///    registry and polls the worker cells directly — a self-contained
///    way to watch the five-version FSM breathe without any plumbing.
///
///      ./build/tools/atc_top --demo --workers 4 --problem fib --n 32
///
//===----------------------------------------------------------------------===//

#include "core/Runtime.h"
#include "metrics/Exposition.h"
#include "metrics/MetricsRegistry.h"
#include "problems/ProblemRegistry.h"
#include "support/Error.h"
#include "support/LoopbackHttp.h"
#include "support/Options.h"
#include "support/Timer.h"

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>

using namespace atc;

namespace {

std::atomic<bool> Interrupted{false};

void onSignal(int) { Interrupted.store(true, std::memory_order_relaxed); }

void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  Out += Buf;
}

/// Human-scaled nanoseconds ("1.5us", "52ns", ...); "-" when zero.
std::string fmtNs(double Ns) {
  char Buf[32];
  if (Ns <= 0)
    std::snprintf(Buf, sizeof(Buf), "-");
  else if (Ns < 1e3)
    std::snprintf(Buf, sizeof(Buf), "%.0fns", Ns);
  else if (Ns < 1e6)
    std::snprintf(Buf, sizeof(Buf), "%.1fus", Ns / 1e3);
  else if (Ns < 1e9)
    std::snprintf(Buf, sizeof(Buf), "%.1fms", Ns / 1e6);
  else
    std::snprintf(Buf, sizeof(Buf), "%.2fs", Ns / 1e9);
  return Buf;
}

/// One letter per FSM mode for the residency sparkline, in TraceMode
/// order (the array length is checked against the enum at compile time).
constexpr char ModeChars[NumTraceModes] = {
    '.', // idle
    'f', // fast
    'c', // check
    '2', // fast_2
    'q', // sequence
    's', // slow
    'y', // sync_wait
    'w', // work (Tascell)
};

/// Renders \p W's mode residency as a fixed-width bar where each mode
/// gets a share of columns proportional to its accumulated nanoseconds.
std::string sparkline(const WorkerSample &W, int Width) {
  double Total = 0;
  for (unsigned M = 0; M != NumTraceModes; ++M)
    Total += static_cast<double>(W.ModeNs[M]);
  if (Total <= 0)
    return std::string(static_cast<std::size_t>(Width), ' ');
  std::string Bar;
  double Cum = 0;
  int Used = 0;
  for (unsigned M = 0; M != NumTraceModes; ++M) {
    Cum += static_cast<double>(W.ModeNs[M]);
    int End = static_cast<int>(Cum / Total * Width + 0.5);
    for (; Used < End; ++Used)
      Bar += ModeChars[M];
  }
  Bar.resize(static_cast<std::size_t>(Width), ' ');
  return Bar;
}

/// Job-layer series scraped from an atc_server /metrics exposition;
/// absent (Present == false) for plain per-run snapshots.
struct JobsStrip {
  bool Present = false;
  std::uint64_t Submitted = 0, Completed = 0, Shed = 0, Expired = 0;
  std::uint64_t Queued = 0, Running = 0;
  HistogramCounts LatencyNs;
};

/// Renders one dashboard frame. \p Prev (may be null) supplies the
/// previous snapshot for per-second rates; with no usable time delta the
/// rate columns show cumulative totals instead. \p Jobs (may be null)
/// adds the server jobs strip.
std::string renderFrame(const MetricsSnapshot &Cur,
                        const MetricsSnapshot *Prev, const MetricsMeta &Meta,
                        const JobsStrip *Jobs = nullptr) {
  double Dt = 0;
  if (Prev && Cur.TimeNs > Prev->TimeNs)
    Dt = static_cast<double>(Cur.TimeNs - Prev->TimeNs) * 1e-9;

  std::string Out;
  appendf(Out, "atc-top — %s on %s (%s), %d workers%s\n",
          Meta.Scheduler.empty() ? "?" : Meta.Scheduler.c_str(),
          Meta.Workload.empty() ? "?" : Meta.Workload.c_str(),
          Meta.Source.empty() ? "?" : Meta.Source.c_str(),
          static_cast<int>(Cur.Workers.size()),
          Dt > 0 ? "" : "  [no rate window yet: totals shown]");
  appendf(Out,
          "totals: tasks=%llu special=%llu steals=%llu fails=%llu "
          "deque_hw=%llu\n",
          static_cast<unsigned long long>(Cur.total(StatField::TasksCreated)),
          static_cast<unsigned long long>(Cur.total(StatField::SpecialTasks)),
          static_cast<unsigned long long>(Cur.total(StatField::Steals)),
          static_cast<unsigned long long>(Cur.total(StatField::StealFails)),
          static_cast<unsigned long long>(
              Cur.total(StatField::DequeHighWater)));
  if (Jobs && Jobs->Present)
    appendf(Out,
            "jobs:   queued=%llu running=%llu done=%llu shed=%llu "
            "expired=%llu  latency p50=%s p99=%s\n",
            static_cast<unsigned long long>(Jobs->Queued),
            static_cast<unsigned long long>(Jobs->Running),
            static_cast<unsigned long long>(Jobs->Completed),
            static_cast<unsigned long long>(Jobs->Shed),
            static_cast<unsigned long long>(Jobs->Expired),
            fmtNs(Jobs->LatencyNs.quantile(0.50)).c_str(),
            fmtNs(Jobs->LatencyNs.quantile(0.99)).c_str());
  // The tune column appears only when at least one controller is armed
  // (atc_tune_cutoff >= 1 is the armed marker; see docs/TUNING.md).
  bool Tuned = false;
  for (const WorkerSample &Ws : Cur.Workers)
    Tuned = Tuned || Ws.TuneCutoff >= 1;
  if (Tuned)
    appendf(Out, "tune:   adjustments=%llu windows=%llu  (c/m/b = cut-off / "
                 "max_stolen_num / backoff shift)\n",
            static_cast<unsigned long long>([&] {
              std::uint64_t T = 0;
              for (const WorkerSample &Ws : Cur.Workers)
                T += Ws.TuneAdjustments;
              return T;
            }()),
            static_cast<unsigned long long>([&] {
              std::uint64_t T = 0;
              for (const WorkerSample &Ws : Cur.Workers)
                T += Ws.TuneWindows;
              return T;
            }()));
  appendf(Out, "%3s %-9s %4s %2s%s %10s %10s %10s %10s  %s\n", "w", "mode",
          "dq", "nt", Tuned ? "   tune c/m/b" : "", "steals/s", "spawns/s",
          "steal p50", "spawn p50",
          "residency (f=fast c=check 2=fast_2 q=seq s=slow y=sync "
          "w=work .=idle)");

  for (std::size_t W = 0; W != Cur.Workers.size(); ++W) {
    const WorkerSample &Ws = Cur.Workers[W];
    char Tune[32] = "";
    if (Tuned) {
      char Knobs[20];
      std::snprintf(Knobs, sizeof(Knobs), "%u/%u/%u", Ws.TuneCutoff,
                    Ws.TuneMaxStolen, Ws.TuneBackoffShift);
      std::snprintf(Tune, sizeof(Tune), " %12s", Knobs);
    }
    auto Rate = [&](StatField F) {
      char Buf[32];
      std::uint64_t C = Ws.stat(F);
      if (Dt <= 0 || !Prev || W >= Prev->Workers.size()) {
        std::snprintf(Buf, sizeof(Buf), "%llu",
                      static_cast<unsigned long long>(C));
        return std::string(Buf);
      }
      std::uint64_t P = Prev->Workers[W].stat(F);
      double R = C >= P ? static_cast<double>(C - P) / Dt : 0.0;
      std::snprintf(Buf, sizeof(Buf), "%.1f", R);
      return std::string(Buf);
    };
    appendf(Out, "%3d %-9s %4lld %2s%s %10s %10s %10s %10s  [%s]\n",
            static_cast<int>(W), traceModeName(Ws.Mode),
            static_cast<long long>(Ws.DequeDepth), Ws.NeedTask ? "!" : "",
            Tune, Rate(StatField::Steals).c_str(),
            Rate(StatField::Spawns).c_str(),
            fmtNs(Ws.StealLatencyNs.quantile(0.5)).c_str(),
            fmtNs(Ws.SpawnCostNs.quantile(0.5)).c_str(),
            sparkline(Ws, 24).c_str());
  }
  return Out;
}

/// Rebuilds a MetricsSnapshot (plus meta and, when the exposition came
/// from atc_server, the jobs strip) from Prometheus exposition text — the
/// shared back half of the file-tailing and HTTP-scraping sources.
bool frameFromPromText(const std::string &Text, MetricsSnapshot &Snap,
                       MetricsMeta &Meta, JobsStrip &Jobs, std::string &Err) {
  std::vector<PromSample> Samples = parsePrometheus(Text);

  int NumWorkers = 0;
  for (const PromSample &S : Samples)
    if (S.Name == "atc_workers")
      NumWorkers = static_cast<int>(S.Value);
  if (NumWorkers <= 0) {
    Err = "no atc_workers sample (not an atc metrics snapshot?)";
    return false;
  }
  Snap = MetricsSnapshot();
  Snap.Workers.resize(static_cast<std::size_t>(NumWorkers));

  auto WorkerOf = [&](const PromSample &S) {
    auto It = S.Labels.find("worker");
    if (It == S.Labels.end())
      return -1;
    int W = std::atoi(It->second.c_str());
    return W >= 0 && W < NumWorkers ? W : -1;
  };
  auto ModeIdx = [](const std::string &Name) {
    for (int M = 0; M != NumTraceModes; ++M)
      if (Name == traceModeName(static_cast<TraceMode>(M)))
        return M;
    return -1;
  };

  // Name -> stat field, built once from the X-macro list.
  struct StatName {
    std::string Name;
    StatField Field;
  };
  std::vector<StatName> StatNames;
  for (unsigned F = 0; F != NumStatFields; ++F) {
    auto SF = static_cast<StatField>(F);
    StatNames.push_back({std::string("atc_") + statFieldPromName(SF) +
                             (statFieldIsGauge(SF) ? "" : "_total"),
                         SF});
  }

  // Histogram buckets arrive as increasing cumulative counts per worker;
  // PrevCum turns them back into per-bucket counts.
  struct HistDef {
    const char *Name;
    HistogramCounts WorkerSample::*Field;
    std::vector<std::uint64_t> PrevCum;
  };
  HistDef Hists[] = {
      {"atc_steal_latency_ns", &WorkerSample::StealLatencyNs, {}},
      {"atc_spawn_cost_ns", &WorkerSample::SpawnCostNs, {}},
      {"atc_deque_depth_hist", &WorkerSample::DequeDepthHist, {}},
      {"atc_reseed_interval_ns", &WorkerSample::ReseedIntervalNs, {}},
  };
  for (HistDef &H : Hists)
    H.PrevCum.assign(static_cast<std::size_t>(NumWorkers), 0);

  // Job-latency buckets are unlabelled (one series per server, not per
  // worker), so their cumulative-to-bucket state is a single scalar.
  std::uint64_t JobLatPrevCum = 0;

  for (const PromSample &S : Samples) {
    if (S.Name.compare(0, 9, "atc_jobs_") == 0) {
      Jobs.Present = true;
      if (S.Name == "atc_jobs_submitted_total")
        Jobs.Submitted = S.asU64();
      else if (S.Name == "atc_jobs_completed_total")
        Jobs.Completed = S.asU64();
      else if (S.Name == "atc_jobs_shed_total")
        Jobs.Shed = S.asU64();
      else if (S.Name == "atc_jobs_expired_total")
        Jobs.Expired = S.asU64();
      else if (S.Name == "atc_jobs_queued")
        Jobs.Queued = S.asU64();
      else if (S.Name == "atc_jobs_running")
        Jobs.Running = S.asU64();
      continue;
    }
    if (S.Name.compare(0, 18, "atc_job_latency_ns") == 0) {
      Jobs.Present = true;
      std::string Suffix = S.Name.substr(18);
      if (Suffix == "_sum") {
        Jobs.LatencyNs.Sum = S.asU64();
      } else if (Suffix == "_count") {
        Jobs.LatencyNs.Count = S.asU64();
      } else if (Suffix == "_bucket") {
        auto It = S.Labels.find("le");
        if (It == S.Labels.end() || It->second == "+Inf")
          continue;
        std::uint64_t Ub = std::strtoull(It->second.c_str(), nullptr, 10);
        for (unsigned B = 0; B != NumLog2Buckets; ++B)
          if (log2BucketUpperBound(B) == Ub) {
            std::uint64_t Cum = S.asU64();
            Jobs.LatencyNs.Buckets[B] =
                Cum >= JobLatPrevCum ? Cum - JobLatPrevCum : 0;
            JobLatPrevCum = Cum;
            break;
          }
      }
      continue;
    }
    if (S.Name == "atc_run_info") {
      auto Get = [&](const char *K) {
        auto It = S.Labels.find(K);
        return It == S.Labels.end() ? std::string() : It->second;
      };
      Meta.Scheduler = Get("scheduler");
      Meta.Source = Get("source");
      Meta.Workload = Get("workload");
      continue;
    }
    if (S.Name == "atc_snapshot_time_ns") {
      Snap.TimeNs = S.asU64();
      continue;
    }
    int W = WorkerOf(S);
    if (W < 0)
      continue;
    WorkerSample &Ws = Snap.Workers[static_cast<std::size_t>(W)];
    if (S.Name == "atc_deque_depth") {
      Ws.DequeDepth = static_cast<std::int64_t>(S.Value);
      continue;
    }
    if (S.Name == "atc_worker_mode") {
      int M = static_cast<int>(S.Value);
      if (M >= 0 && M < NumTraceModes)
        Ws.Mode = static_cast<TraceMode>(M);
      continue;
    }
    if (S.Name == "atc_need_task") {
      Ws.NeedTask = S.Value != 0;
      continue;
    }
    if (S.Name == "atc_tune_cutoff") {
      Ws.TuneCutoff = static_cast<std::uint32_t>(S.Value);
      continue;
    }
    if (S.Name == "atc_tune_max_stolen_num") {
      Ws.TuneMaxStolen = static_cast<std::uint32_t>(S.Value);
      continue;
    }
    if (S.Name == "atc_tune_backoff_shift") {
      Ws.TuneBackoffShift = static_cast<std::uint32_t>(S.Value);
      continue;
    }
    if (S.Name == "atc_tune_adjustments_total") {
      Ws.TuneAdjustments = S.asU64();
      continue;
    }
    if (S.Name == "atc_tune_windows_total") {
      Ws.TuneWindows = S.asU64();
      continue;
    }
    if (S.Name == "atc_mode_ns_total") {
      auto It = S.Labels.find("mode");
      int M = It == S.Labels.end() ? -1 : ModeIdx(It->second);
      if (M >= 0)
        Ws.ModeNs[M] = S.asU64();
      continue;
    }
    bool Matched = false;
    for (const StatName &N : StatNames)
      if (S.Name == N.Name) {
        Ws.Stats[static_cast<unsigned>(N.Field)] = S.asU64();
        Matched = true;
        break;
      }
    if (Matched)
      continue;
    for (HistDef &H : Hists) {
      std::size_t Len = std::strlen(H.Name);
      if (S.Name.compare(0, Len, H.Name) != 0)
        continue;
      HistogramCounts &C = Ws.*H.Field;
      std::string Suffix = S.Name.substr(Len);
      if (Suffix == "_sum") {
        C.Sum = S.asU64();
      } else if (Suffix == "_count") {
        C.Count = S.asU64();
      } else if (Suffix == "_bucket") {
        auto It = S.Labels.find("le");
        if (It == S.Labels.end() || It->second == "+Inf")
          break;
        std::uint64_t Ub = std::strtoull(It->second.c_str(), nullptr, 10);
        for (unsigned B = 0; B != NumLog2Buckets; ++B)
          if (log2BucketUpperBound(B) == Ub) {
            std::uint64_t Cum = S.asU64();
            std::uint64_t &PrevC =
                H.PrevCum[static_cast<std::size_t>(W)];
            C.Buckets[B] = Cum >= PrevC ? Cum - PrevC : 0;
            PrevC = Cum;
            break;
          }
      }
      break;
    }
  }
  return true;
}

/// The file-tailing source: reads the Prometheus snapshot any
/// metrics-aware CLI rewrites periodically. Tolerates the transient
/// empty read that can race the writer's rename.
bool frameFromPromFile(const std::string &Path, MetricsSnapshot &Snap,
                       MetricsMeta &Meta, JobsStrip &Jobs, std::string &Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Err = "cannot open file";
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return frameFromPromText(SS.str(), Snap, Meta, Jobs, Err);
}

/// The HTTP-scraping source: one GET per frame against a loopback
/// /metrics endpoint (MetricsSampler or atc_server).
bool frameFromHttp(int Port, const std::string &Path, MetricsSnapshot &Snap,
                   MetricsMeta &Meta, JobsStrip &Jobs, std::string &Err) {
  int Status = 0;
  std::string Body;
  if (!httpRequest(Port, "GET", Path, "", Status, Body)) {
    Err = "cannot reach 127.0.0.1:" + std::to_string(Port);
    return false;
  }
  if (Status != 200) {
    Err = "HTTP " + std::to_string(Status) + " from " + Path;
    return false;
  }
  return frameFromPromText(Body, Snap, Meta, Jobs, Err);
}

/// Accepts "http://127.0.0.1:PORT[/path]" (or localhost); anything else
/// is treated as a file path by the caller. The path defaults to
/// /metrics when absent.
bool parseHttpSource(const std::string &Url, int &Port, std::string &Path) {
  if (Url.compare(0, 7, "http://") != 0)
    return false;
  std::string Rest = Url.substr(7);
  std::size_t Slash = Rest.find('/');
  std::string HostPort = Rest.substr(0, Slash);
  Path = Slash == std::string::npos ? "/metrics" : Rest.substr(Slash);
  std::size_t Colon = HostPort.rfind(':');
  std::string Host =
      Colon == std::string::npos ? HostPort : HostPort.substr(0, Colon);
  if (Host != "127.0.0.1" && Host != "localhost")
    return false;
  Port = Colon == std::string::npos
             ? 80
             : std::atoi(HostPort.c_str() + Colon + 1);
  return Port > 0 && Port < 65536;
}

} // namespace

int main(int argc, char **argv) {
  bool Demo = false;
  long long Workers = 4;
  long long ProblemSize = 0;
  std::string Problem = "nqueens-array";
  std::string Scheduler = "adaptivetc";
  long long PeriodMs = 500;
  long long Frames = 0;
  bool Once = false;
  bool NoClear = false;
  OptionSet Opts("Live per-worker scheduler metrics dashboard: tail a "
                 "--metrics-file Prometheus snapshot, scrape an http:// "
                 "metrics endpoint, or --demo to watch an in-process run");
  Opts.addFlag("demo", &Demo,
               "run a registry problem in-process in a loop and poll its "
               "registry directly (no file needed)");
  Opts.addInt("workers", &Workers, "worker threads for --demo (default 4)");
  Opts.addString("problem", &Problem,
                 "registry problem for --demo (default nqueens-array)");
  Opts.addInt("n", &ProblemSize,
              "problem size for --demo (default 0: the kind's default)");
  Opts.addString("sched", &Scheduler,
                 "scheduler for --demo (default adaptivetc)");
  Opts.addInt("period-ms", &PeriodMs, "refresh period (default 500)");
  Opts.addInt("frames", &Frames,
              "stop after this many frames (default 0: until Ctrl-C)");
  Opts.addFlag("once", &Once, "render a single frame and exit (no clear)");
  Opts.addFlag("no-clear", &NoClear,
               "append frames instead of redrawing (for logs/CI)");
  Opts.parse(argc, argv);
  if (Once)
    Frames = 1;
  bool Clear = !NoClear && !Once && isatty(1);
  if (!Demo && Opts.positionalArgs().size() != 1) {
    std::fprintf(stderr,
                 "usage: atc_top <metrics.prom>   (file written by "
                 "--metrics-file)\n"
                 "       atc_top http://127.0.0.1:<port>/metrics\n"
                 "       atc_top --demo [--workers N] [--problem K] "
                 "[--n N]\n");
    return 2;
  }
  int HttpPort = 0;
  std::string HttpPath;
  bool Http = !Demo && parseHttpSource(Opts.positionalArgs()[0], HttpPort,
                                       HttpPath);
  if (!Demo && !Http &&
      Opts.positionalArgs()[0].compare(0, 7, "http://") == 0) {
    std::fprintf(stderr,
                 "atc_top: only loopback URLs are supported "
                 "(http://127.0.0.1:<port>[/path])\n");
    return 2;
  }
#if !ATC_METRICS_ENABLED
  if (Demo) {
    std::fprintf(stderr, "atc_top: built with ATC_METRICS=OFF; --demo "
                         "would show an empty registry\n");
    return 1;
  }
#endif

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // --demo: a background thread re-runs the workload with the registry
  // armed; the foreground polls the same cells in-process.
  MetricsRegistry Reg;
  std::thread Runner;
  std::atomic<bool> StopRunner{false};
  if (Demo) {
    SchedulerConfig Cfg;
    if (!parseSchedulerKind(Scheduler, Cfg.Kind))
      reportFatalError("unknown scheduler '" + Scheduler + "'");
    Cfg.NumWorkers = static_cast<int>(Workers);
    Cfg.Metrics = true;
    Cfg.MetricsSink = &Reg;
    ProblemRunner Prob;
    std::string Err;
    if (!makeProblemRunner(Problem, static_cast<int>(ProblemSize), Prob, Err))
      reportFatalError(Err);
    Reg.reset(Cfg.NumWorkers);
    // The runtime leaves an external sink's Meta to its owner.
    Reg.Meta.Scheduler = schedulerKindName(Cfg.Kind);
    Reg.Meta.Source = "runtime";
    Reg.Meta.Workload = Prob.Workload + " (looping)";
    Runner = std::thread([Cfg, Prob, &StopRunner] {
      while (!StopRunner.load(std::memory_order_relaxed) &&
             !Interrupted.load(std::memory_order_relaxed))
        Prob.Run(Cfg);
    });
  }

  MetricsSnapshot Prev;
  bool HavePrev = false;
  long long Rendered = 0;
  int ConsecutiveErrors = 0;
  while (!Interrupted.load(std::memory_order_relaxed)) {
    MetricsSnapshot Cur;
    MetricsMeta Meta;
    JobsStrip Jobs;
    bool Ok;
    if (Demo) {
      // Each loop iteration re-arms the registry (run metadata included),
      // so read the meta after sampling.
      Cur = Reg.sample();
      Meta = Reg.Meta;
      Ok = true;
    } else {
      std::string Err;
      Ok = Http ? frameFromHttp(HttpPort, HttpPath, Cur, Meta, Jobs, Err)
                : frameFromPromFile(Opts.positionalArgs()[0], Cur, Meta,
                                    Jobs, Err);
      if (!Ok) {
        if (++ConsecutiveErrors > 20) {
          std::fprintf(stderr, "atc_top: %s: %s\n",
                       Opts.positionalArgs()[0].c_str(), Err.c_str());
          break;
        }
      }
    }
    if (Ok) {
      ConsecutiveErrors = 0;
      std::string Frame = renderFrame(Cur, HavePrev ? &Prev : nullptr, Meta,
                                      Jobs.Present ? &Jobs : nullptr);
      if (Clear)
        std::fputs("\x1b[H\x1b[2J", stdout);
      std::fputs(Frame.c_str(), stdout);
      if (!Clear)
        std::fputs("\n", stdout);
      std::fflush(stdout);
      Prev = Cur;
      HavePrev = true;
      if (Frames > 0 && ++Rendered >= Frames)
        break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(PeriodMs));
  }

  if (Runner.joinable()) {
    StopRunner.store(true, std::memory_order_relaxed);
    Runner.join();
  }
  return 0;
}
