//===- tools/atcc.cpp - The ATC compiler driver ---------------------------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// atcc: compiles ATC (extended-Cilk with taskprivate) source to C++
/// implementing the paper's five-version translation scheme.
///
///   atcc input.atc                  # emit C++ to stdout
///   atcc input.atc -o out.cpp       # emit to a file
///   atcc input.atc --dump-ast       # print the AST instead
///   atcc input.atc --dump-tokens    # print the token stream instead
///
/// The generated code targets lang/runtime/GenRuntime.h; compile it with
///   g++ -std=c++20 -I <repo>/src out.cpp -o prog
///
//===----------------------------------------------------------------------===//

#include "lang/Compile.h"
#include "lang/Lexer.h"
#include "support/Error.h"
#include "support/Options.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace atc;
using namespace atc::lang;

int main(int argc, char **argv) {
  std::string Output;
  std::string RuntimeInclude = "lang/runtime/GenRuntime.h";
  bool DumpAst = false;
  bool DumpTokens = false;
  OptionSet Opts("atcc: AdaptiveTC (extended Cilk) to C++ compiler");
  Opts.addString("o", &Output, "output file (default: stdout)");
  Opts.addString("runtime-include", &RuntimeInclude,
                 "include path spelled into the generated code");
  Opts.addFlag("dump-ast", &DumpAst, "print the AST and exit");
  Opts.addFlag("dump-tokens", &DumpTokens, "print the tokens and exit");
  Opts.parse(argc, argv);

  if (Opts.positionalArgs().size() != 1)
    reportFatalError("expected exactly one input file (see --help)");
  const std::string &Input = Opts.positionalArgs()[0];

  std::ifstream In(Input);
  if (!In)
    reportFatalError("cannot open " + Input);
  std::stringstream Buf;
  Buf << In.rdbuf();
  std::string Source = Buf.str();

  if (DumpTokens) {
    std::vector<std::string> Errors;
    for (const Token &T : Lexer::tokenize(Source, Errors)) {
      std::printf("%-8s %-20s %s\n", T.Loc.str().c_str(),
                  tokenKindName(T.Kind),
                  T.Kind == TokenKind::IntLiteral
                      ? std::to_string(T.IntValue).c_str()
                      : T.Text.c_str());
    }
    for (const std::string &E : Errors)
      std::fprintf(stderr, "%s: error: %s\n", Input.c_str(), E.c_str());
    return Errors.empty() ? 0 : 1;
  }

  CompileResult R = compileAtc(Source, RuntimeInclude);
  if (!R.Errors.empty()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "%s:%s\n", Input.c_str(), E.c_str());
    return 1;
  }

  std::string Text = DumpAst ? dumpProgram(R.Ast) : R.Cpp;
  if (Output.empty()) {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return 0;
  }
  std::ofstream Out(Output);
  if (!Out)
    reportFatalError("cannot write " + Output);
  Out << Text;
  std::printf("wrote %s\n", Output.c_str());
  return 0;
}
