#!/usr/bin/env python3
"""Compare fresh micro_spawn / micro_deque / atc_loadgen runs against the
committed baselines (BENCH_spawn.json / BENCH_deque.json /
BENCH_server.json) with noise tolerance.

The committed baselines were recorded on one specific machine; a fresh
run on different hardware is uniformly faster or slower. To compare
across machines, every benchmark's fresh/baseline ratio is normalized by
the *median* ratio across all compared benchmarks (the machine-speed
factor), and only benchmarks whose normalized ratio exceeds --tolerance
are flagged: a true regression shows up as one benchmark drifting away
from the pack, not as the pack moving together.

Usage (from the repo root, after a Release build):

    python3 tools/bench_compare.py \
        --spawn-bench build/bench/micro_spawn \
        --deque-bench build/bench/micro_deque

    # or compare pre-recorded --benchmark_format=json outputs:
    python3 tools/bench_compare.py --spawn-json fresh_spawn.json

    # or compare an atc_loadgen --json report against the server baseline:
    python3 tools/bench_compare.py --server-json fresh_load.json

    # or gate an ablation_tuning --json report against BENCH_tuning.json:
    python3 tools/bench_compare.py --tuning-json fresh_tuning.json

The tuning family is special: ablation_tuning runs on the simulator's
virtual clock, so its numbers are deterministic and machine-independent.
It is gated on absolute acceptance criteria (settled_over_best <= 1.05,
controller actually adjusted) plus a tight drift check against the
committed baseline (--tuning-tolerance, default 1.01).

Exit status: 0 when every compared benchmark is within tolerance,
1 on regression, 2 on usage/run errors.
"""

import argparse
import json
import statistics
import subprocess
import sys

# Deque benchmarks whose baseline entries are throughput (items/sec,
# higher is better) rather than per-op time.
DRAIN_PREFIXES = (
    "BM_DrainStealThe/",
    "BM_DrainStealAtomic/",
    "BM_DrainStealChaseLev/",
)

# Contended* numbers are preemption-bound on small shared runners (see
# the note in BENCH_deque.json); comparing them is noise, so they are
# skipped and listed as such.
SKIP_PREFIXES = (
    "BM_ContendedStealThe/",
    "BM_ContendedStealAtomic/",
    "BM_ContendedStealChaseLev/",
)


def drain_kind(name):
    """Deque kind key for a BM_DrainSteal* benchmark name."""
    if "ChaseLev" in name:
        return "chaselev"
    return "the" if "The" in name else "atomic"

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def run_benchmark(binary, min_time):
    """Runs a google-benchmark binary and returns its parsed JSON."""
    cmd = [
        binary,
        "--benchmark_format=json",
        "--benchmark_min_time={}".format(min_time),
    ]
    try:
        out = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, check=True
        )
    except (OSError, subprocess.CalledProcessError) as e:
        sys.exit("error: cannot run {}: {}".format(binary, e))
    return json.loads(out.stdout.decode())


def fresh_results(bench_json):
    """{name: (real_time_ns, items_per_second or None)} from a
    google-benchmark JSON document."""
    res = {}
    for b in bench_json.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = TIME_UNIT_NS.get(b.get("time_unit", "ns"), 1.0)
        res[b["name"]] = (
            float(b["real_time"]) * unit,
            b.get("items_per_second"),
        )
    return res


def spawn_pairs(fresh, baseline):
    """(name, fresh_metric, base_metric, kind) pairs for micro_spawn.
    Baseline names match the benchmark names exactly. runs.current is the
    most recent committed record (refreshed when a PR legitimately moves
    the numbers); runs.after is the original PR-2 record kept for
    history."""
    runs = baseline.get("runs", {})
    base_runs = runs.get("current") or runs.get("after", {})
    pairs, missing = [], []
    for name, entry in sorted(base_runs.items()):
        base_ns = entry.get("real_time_ns")
        if base_ns is None:
            continue
        if name not in fresh:
            missing.append(name)
            continue
        pairs.append((name, fresh[name][0], float(base_ns), "time"))
    return pairs, missing


def deque_pairs(fresh, baseline):
    """Pairs for micro_deque: single-thread per-op times by stripping the
    BM_ prefix, and DrainSteal* throughput via drain.<kind>.thieves_<n>."""
    pairs, missing, skipped = [], [], []
    single = baseline.get("single_thread_ns", {})
    drain = baseline.get("drain", {})
    for name, (ns, ips) in sorted(fresh.items()):
        if name.startswith(SKIP_PREFIXES):
            skipped.append(name)
            continue
        if name.startswith(DRAIN_PREFIXES):
            # "BM_DrainStealThe/4/manual_time" -> kind "the", thieves "4".
            kind = drain_kind(name)
            thieves = name.split("/")[1]
            base_ips = drain.get(kind, {}).get("thieves_" + thieves)
            if base_ips is None or not ips:
                missing.append(name)
            else:
                pairs.append((name, float(ips), float(base_ips), "throughput"))
            continue
        short = name[3:] if name.startswith("BM_") else name
        base_ns = single.get(short)
        if base_ns is None:
            missing.append(name)
        else:
            pairs.append((name, ns, float(base_ns), "time"))
    return pairs, missing, skipped


def server_pairs(fresh, baseline):
    """Pairs for an atc_loadgen --json report vs BENCH_server.json: the
    JobLatency/JobQueue quantile families (time) and JobThroughput
    (jobs/s, higher is better)."""
    runs = baseline.get("runs", {})
    base_runs = runs.get("current") or runs.get("after", {})
    pairs, missing = [], []
    families = (
        ("JobLatency", fresh.get("latency_ns", {}), ("p50", "p90", "p99")),
        ("JobQueue", fresh.get("queue_ns", {}), ("p50", "p99")),
    )
    for family, quantiles, keys in families:
        for q in keys:
            name = "{}/{}".format(family, q)
            base_ns = base_runs.get(name, {}).get("real_time_ns")
            fresh_ns = quantiles.get(q)
            if base_ns is None or fresh_ns is None:
                missing.append(name)
            else:
                pairs.append((name, float(fresh_ns), float(base_ns), "time"))
    base_tp = base_runs.get("JobThroughput", {}).get("jobs_per_second")
    fresh_tp = fresh.get("throughput_jobs_s")
    if base_tp is None or fresh_tp is None:
        missing.append("JobThroughput")
    else:
        pairs.append(
            ("JobThroughput", float(fresh_tp), float(base_tp), "throughput")
        )
    return pairs, missing


def tuning_check(fresh, baseline, tolerance):
    """Gates on an ablation_tuning --json report (BENCH_tuning.json
    schema). The simulator runs on virtual clocks, so the record is
    deterministic: unlike the host-timed families there is no machine-
    speed normalization, and the baseline comparison can be tight.

    Hard gates (per family): settled_over_best <= 1.05 (the acceptance
    bar: the settled controller reaches within 5% of the best static
    grid point) and tuned_adjustments > 0 (the controller actually
    acted). The baseline comparison then flags any settled makespan
    drifting past --tuning-tolerance of the committed record — a rule
    change that moves the numbers must re-record the baseline."""
    bad, rows = [], []
    base_fams = baseline.get("families", {}) if baseline else {}
    scale_match = not baseline or fresh.get("scale") == baseline.get("scale")
    for name, fam in sorted(fresh.get("families", {}).items()):
        ratio = fam.get("settled_over_best")
        adjusts = fam.get("tuned_adjustments", 0)
        if ratio is None or ratio > 1.05:
            bad.append("{}: settled_over_best={} exceeds 1.05".format(name, ratio))
        if not adjusts:
            bad.append("{}: controller made no adjustments".format(name))
        verdict = "ok"
        base_ns = base_fams.get(name, {}).get("tuned_settled_ns")
        fresh_ns = fam.get("tuned_settled_ns")
        drift = None
        if base_ns and fresh_ns and scale_match:
            drift = float(fresh_ns) / float(base_ns)
            if drift > tolerance:
                verdict = "REGRESSION"
                bad.append(
                    "{}: settled {:.1f}ns vs baseline {:.1f}ns "
                    "({:.3f}x > {:.3f}x)".format(
                        name, fresh_ns, base_ns, drift, tolerance
                    )
                )
            elif drift < 1.0 / tolerance:
                verdict = "improved"
        rows.append((name, ratio, adjusts, fam.get("final", {}), drift, verdict))
    if not scale_match:
        rows.append(("(scale mismatch: baseline comparison skipped)",
                     None, None, {}, None, ""))
    return rows, bad


def server_health(fresh):
    """Hard correctness gates on a loadgen report, independent of any
    timing tolerance: nothing lost, nothing failed, no wrong answers."""
    bad = []
    for key in ("lost", "failed", "value_mismatches", "submit_errors"):
        if fresh.get(key, 0):
            bad.append("{}={}".format(key, fresh[key]))
    return bad


def compare(pairs, tolerance):
    """Returns (rows, regressions). ratio > 1 always means 'fresh is
    slower than baseline'; normalization divides out the pack's median."""
    ratios = []
    for _, fresh_v, base_v, kind in pairs:
        if kind == "time":
            ratios.append(fresh_v / base_v)
        else:  # throughput: higher is better, invert
            ratios.append(base_v / fresh_v)
    speed = statistics.median(ratios) if ratios else 1.0
    rows, regressions = [], []
    for (name, fresh_v, base_v, kind), ratio in zip(pairs, ratios):
        norm = ratio / speed if speed > 0 else ratio
        verdict = "ok"
        if norm > tolerance:
            verdict = "REGRESSION"
            regressions.append(name)
        elif norm < 1.0 / tolerance:
            verdict = "improved"
        rows.append((name, base_v, fresh_v, kind, ratio, norm, verdict))
    return rows, regressions, speed


def report(title, rows, speed, missing, skipped):
    print("== {} (machine-speed factor {:.2f}x) ==".format(title, speed))
    print(
        "{:<42} {:>14} {:>14} {:>7} {:>6}  {}".format(
            "benchmark", "baseline", "fresh", "ratio", "norm", "verdict"
        )
    )
    for name, base_v, fresh_v, kind, ratio, norm, verdict in rows:
        unit = "ns" if kind == "time" else "it/s"
        print(
            "{:<42} {:>12.1f}{} {:>12.1f}{} {:>6.2f}x {:>5.2f}x  {}".format(
                name, base_v, unit, fresh_v, unit, ratio, norm, verdict
            )
        )
    for name in missing:
        print("{:<42} (no baseline entry: skipped)".format(name))
    for name in skipped:
        print("{:<42} (preemption-bound on shared runners: skipped)".format(name))
    print()


def tuning_report(title, rows):
    print("== {} (virtual-time, no machine normalization) ==".format(title))
    print(
        "{:<10} {:>14} {:>8} {:>7} {:>14}  {}".format(
            "family", "settled/best", "adjusts", "drift", "final c/m/b", "verdict"
        )
    )
    for name, ratio, adjusts, final, drift, verdict in rows:
        if ratio is None and adjusts is None:
            print(name)
            continue
        knobs = "{}/{}/{}".format(
            final.get("cutoff", "?"),
            final.get("max_stolen_num", "?"),
            final.get("backoff_shift", "?"),
        )
        print(
            "{:<10} {:>13.4f}x {:>8} {:>7} {:>14}  {}".format(
                name,
                ratio if ratio is not None else float("nan"),
                adjusts,
                "{:.3f}x".format(drift) if drift is not None else "-",
                knobs,
                verdict,
            )
        )
    print()


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    ap.add_argument("--spawn-bench", help="path to the micro_spawn binary")
    ap.add_argument("--deque-bench", help="path to the micro_deque binary")
    ap.add_argument(
        "--spawn-json", help="pre-recorded micro_spawn --benchmark_format=json output"
    )
    ap.add_argument(
        "--deque-json", help="pre-recorded micro_deque --benchmark_format=json output"
    )
    ap.add_argument(
        "--server-json", help="atc_loadgen --json report to compare"
    )
    ap.add_argument(
        "--spawn-baseline", default="BENCH_spawn.json", help="committed spawn baseline"
    )
    ap.add_argument(
        "--deque-baseline", default="BENCH_deque.json", help="committed deque baseline"
    )
    ap.add_argument(
        "--server-baseline",
        default="BENCH_server.json",
        help="committed server-layer baseline",
    )
    ap.add_argument(
        "--tuning-json", help="ablation_tuning --json report to gate"
    )
    ap.add_argument(
        "--tuning-baseline",
        default="BENCH_tuning.json",
        help="committed tuning-ablation baseline",
    )
    ap.add_argument(
        "--tuning-tolerance",
        type=float,
        default=1.01,
        help="max allowed settled-makespan drift vs the tuning baseline "
        "(default 1.01; the simulator is deterministic, so any drift "
        "means the rules or the model changed and the baseline should "
        "be re-recorded)",
    )
    ap.add_argument(
        "--tolerance",
        type=float,
        default=1.6,
        help="max allowed normalized slow-down per benchmark (default 1.6; "
        "use a larger value on noisy shared runners)",
    )
    ap.add_argument(
        "--min-time",
        type=float,
        default=0.05,
        help="per-benchmark measurement window in seconds (default 0.05)",
    )
    args = ap.parse_args()

    any_compared = False
    failed = []

    if args.spawn_bench or args.spawn_json:
        if args.spawn_json:
            with open(args.spawn_json) as f:
                fresh = fresh_results(json.load(f))
        else:
            fresh = fresh_results(run_benchmark(args.spawn_bench, args.min_time))
        with open(args.spawn_baseline) as f:
            baseline = json.load(f)
        pairs, missing = spawn_pairs(fresh, baseline)
        rows, regressions, speed = compare(pairs, args.tolerance)
        report("micro_spawn vs " + args.spawn_baseline, rows, speed, missing, [])
        failed += regressions
        any_compared = any_compared or bool(pairs)

    if args.deque_bench or args.deque_json:
        if args.deque_json:
            with open(args.deque_json) as f:
                fresh = fresh_results(json.load(f))
        else:
            fresh = fresh_results(run_benchmark(args.deque_bench, args.min_time))
        with open(args.deque_baseline) as f:
            baseline = json.load(f)
        pairs, missing, skipped = deque_pairs(fresh, baseline)
        rows, regressions, speed = compare(pairs, args.tolerance)
        report("micro_deque vs " + args.deque_baseline, rows, speed, missing, skipped)
        failed += regressions
        any_compared = any_compared or bool(pairs)

    if args.server_json:
        with open(args.server_json) as f:
            fresh = json.load(f)
        with open(args.server_baseline) as f:
            baseline = json.load(f)
        health = server_health(fresh)
        if health:
            print("FAILED: loadgen report is unhealthy: " + ", ".join(health))
            return 1
        pairs, missing = server_pairs(fresh, baseline)
        rows, regressions, speed = compare(pairs, args.tolerance)
        report("atc_loadgen vs " + args.server_baseline, rows, speed, missing, [])
        failed += regressions
        any_compared = any_compared or bool(pairs)

    if args.tuning_json:
        with open(args.tuning_json) as f:
            fresh = json.load(f)
        try:
            with open(args.tuning_baseline) as f:
                baseline = json.load(f)
        except OSError:
            baseline = None
        rows, bad = tuning_check(fresh, baseline, args.tuning_tolerance)
        tuning_report("ablation_tuning vs " + args.tuning_baseline, rows)
        if bad:
            print("FAILED: tuning gate: " + "; ".join(bad))
            return 1
        any_compared = any_compared or bool(rows)

    if not any_compared:
        sys.exit("error: nothing compared; pass --spawn-bench/--deque-bench "
                 "(or --spawn-json/--deque-json/--server-json/--tuning-json)")
    if failed:
        print("FAILED: {} benchmark(s) regressed: {}".format(
            len(failed), ", ".join(failed)))
        return 1
    print("OK: all compared benchmarks within {:.2f}x normalized tolerance"
          .format(args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
