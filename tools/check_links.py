#!/usr/bin/env python3
"""Markdown link checker for this repository's documentation.

Checks every local (non-http) link target in the given markdown files:
relative file links must resolve to an existing file or directory, and
intra-document anchors (#section) must match a heading in the target
file. External http(s) links are not fetched — CI must not depend on
third-party uptime — but their URLs must at least parse.

Usage: tools/check_links.py README.md DESIGN.md docs/TRACING.md ...
Exits non-zero listing every broken link.
"""

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[([^\]]*)\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's anchor-ification: lowercase, drop punctuation, dash
    spaces."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[`*_]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor, flags=re.UNICODE)
    return anchor.replace(" ", "-")


def anchors_of(path: Path) -> set:
    text = CODE_FENCE_RE.sub("", path.read_text(encoding="utf-8"))
    return {github_anchor(h) for h in HEADING_RE.findall(text)}


def check_file(md: Path) -> list:
    errors = []
    text = md.read_text(encoding="utf-8")
    # Links inside code fences are example syntax, not navigation.
    text = CODE_FENCE_RE.sub("", text)
    for label, target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        frag = ""
        if "#" in target:
            target, frag = target.split("#", 1)
        dest = md if not target else (md.parent / target).resolve()
        if not dest.exists():
            errors.append(f"{md}: broken link [{label}]({target}): "
                          f"no such file {dest}")
            continue
        if frag and dest.is_file() and dest.suffix == ".md":
            if github_anchor(frag) not in anchors_of(dest):
                errors.append(f"{md}: broken anchor [{label}]"
                              f"({target}#{frag}): no heading matches "
                              f"#{frag} in {dest.name}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for arg in argv[1:]:
        md = Path(arg)
        if not md.is_file():
            errors.append(f"{md}: file not found")
            continue
        errors.extend(check_file(md))
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"{len(errors)} broken link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(argv) - 1} file(s): all links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
