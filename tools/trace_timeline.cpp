//===- tools/trace_timeline.cpp - Text summary of a scheduler trace -------===//
//
// Part of the AdaptiveTC project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Summarizes a trace.json (produced by any --trace flag in this repo,
/// or by an atcc-generated binary run with ATCGEN_TRACE=...) on the
/// terminal: per-worker utilization split by FSM mode, a steal-latency
/// histogram, and the need_task-to-reseed adaptation latencies. For the
/// interactive view, load the same file in https://ui.perfetto.dev.
///
///   ./build/examples/nqueens --workers 4 --trace out.json
///   ./build/tools/trace_timeline out.json
///
//===----------------------------------------------------------------------===//

#include "support/Options.h"
#include "trace/TraceSummary.h"

#include <cstdio>

using namespace atc;

int main(int argc, char **argv) {
  OptionSet Opts("Summarize a scheduler event trace (trace.json) as a "
                 "per-worker timeline report");
  Opts.parse(argc, argv);
  if (Opts.positionalArgs().size() != 1) {
    std::fprintf(stderr, "usage: trace_timeline <trace.json>\n");
    return 2;
  }
  const std::string &Path = Opts.positionalArgs()[0];

  ParsedTrace Trace;
  std::string Error;
  if (!readTraceFile(Path, Trace, Error)) {
    std::fprintf(stderr, "trace_timeline: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return 1;
  }

  std::string Report = formatSummary(summarizeTrace(Trace));
  std::fputs(Report.c_str(), stdout);
  return 0;
}
